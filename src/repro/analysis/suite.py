"""One-call experiment suite with a markdown report.

``run_suite`` executes a configurable-size subset of the repository's
experiments (locality contrast, stabilization, safety decay, throughput and
fairness, malicious-crash recovery, masking census) against the paper's
program and the baselines, and returns a structured result that
``to_markdown`` renders into a self-contained report — the programmatic
counterpart of the ``benchmarks/`` suite for users who want numbers inside
their own pipelines.

Since the campaign refactor every section is a *campaign spec*: a list of
self-describing shards (see :mod:`repro.campaign.shard`) plus a pure
aggregator that folds the shard records into the section's table rows.  All
sections' shards run through one :func:`repro.campaign.runner.run_shards`
call, so ``jobs>1`` parallelises the whole suite across a worker pool and
``records_path`` gives it checkpoint/resume; ``jobs=1`` (the default) is the
sequential in-process fallback with bit-identical numbers.

>>> from repro.analysis.suite import SuiteConfig, run_suite, to_markdown
>>> result = run_suite(SuiteConfig(quick=True), jobs=4)  # doctest: +SKIP
>>> print(to_markdown(result))                           # doctest: +SKIP
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..campaign.shard import Shard

#: Algorithms contrasted by the locality section.
_LOCALITY_ALGORITHMS = ("na-diners", "choy-singh", "hygienic")
#: Algorithms contrasted by the throughput section.
_THROUGHPUT_ALGORITHMS = ("na-diners", "choy-singh", "hygienic", "fork-ordering")


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs for :func:`run_suite`.

    ``quick`` trades precision for wall-clock: smaller systems, shorter
    windows, fewer seeds.  The size knobs (``line_n``, ``window``,
    ``trials``) default from ``quick`` but can be pinned explicitly — the
    determinism and resume tests run tiny pinned configurations.  Either
    mode asserts nothing — the suite reports; the benchmark targets enforce.
    """

    quick: bool = True
    seed: int = 0
    line_n: Optional[int] = None
    window: Optional[int] = None
    trials: Optional[int] = None
    max_steps: int = 500_000

    def __post_init__(self) -> None:
        if self.line_n is None:
            object.__setattr__(self, "line_n", 8 if self.quick else 14)
        if self.window is None:
            object.__setattr__(self, "window", 20_000 if self.quick else 60_000)
        if self.trials is None:
            object.__setattr__(self, "trials", 5 if self.quick else 15)


@dataclass
class Section:
    """One report section: a titled table plus a one-paragraph reading.

    ``metrics`` is the section's scalar snapshot — the handful of numbers a
    dashboard would chart (max locality radius, converged fraction, …) —
    keyed by short metric name.  Empty when the section's spec defines no
    ``build_metrics`` hook.
    """

    title: str
    header: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    commentary: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class SuiteResult:
    config: SuiteConfig
    sections: List[Section] = field(default_factory=list)


RowBuilder = Callable[[Sequence[Mapping]], List[Tuple]]
MetricsBuilder = Callable[[Sequence[Mapping]], Mapping[str, float]]


@dataclass(frozen=True)
class SectionSpec:
    """A section as a campaign: its shards and its record aggregator.

    ``build_rows`` receives the shards' result dicts *in shard order* (the
    runner may complete them in any interleaving; the spec realigns by key),
    so aggregation is deterministic however the campaign executed.
    ``build_metrics`` (optional) maps the same results to the section's
    scalar metric snapshot; it feeds ``run_suite(metrics_out=...)``.
    """

    title: str
    header: Tuple[str, ...]
    commentary: str
    shards: Tuple[Shard, ...]
    build_rows: RowBuilder
    build_metrics: Optional[MetricsBuilder] = None

    def slug(self) -> str:
        """Metric-name-friendly identifier derived from the title."""
        head = self.title.split("(")[0].split(":")[0].strip().lower()
        return re.sub(r"[^a-z0-9]+", "-", head).strip("-")

    def section(self, results: Sequence[Mapping]) -> Section:
        metrics = dict(self.build_metrics(results)) if self.build_metrics else {}
        return Section(
            title=self.title,
            header=self.header,
            rows=self.build_rows(results),
            commentary=self.commentary,
            metrics=metrics,
        )


# ------------------------------------------------------------ section specs


def _locality_spec(config: SuiteConfig) -> SectionSpec:
    topology = f"line:{config.line_n}"
    shards = tuple(
        Shard(
            "locality",
            {
                "topology": topology,
                "algorithm": algorithm,
                "victims": [0],
                "malicious_steps": None,
                "warmup": 2 * config.window,
                "settle": config.window // 2,
                "window": config.window,
            },
            seed=config.seed,
        )
        for algorithm in _LOCALITY_ALGORITHMS
    )

    def build_rows(results: Sequence[Mapping]) -> List[Tuple]:
        rows: List[Tuple] = []
        for algorithm, result in zip(_LOCALITY_ALGORITHMS, results):
            radius = result["radius"]
            rows.append(
                (
                    algorithm,
                    radius if radius is not None else 0,
                    ",".join(str(p) for p in result["starving"]) or "-",
                )
            )
        return rows

    def build_metrics(results: Sequence[Mapping]) -> Mapping[str, float]:
        radii = {
            algorithm: (result["radius"] if result["radius"] is not None else 0)
            for algorithm, result in zip(_LOCALITY_ALGORITHMS, results)
        }
        return {
            "na_diners_radius": radii["na-diners"],
            "max_radius": max(radii.values()),
            "starving_total": sum(len(r["starving"]) for r in results),
        }

    return SectionSpec(
        title="Failure locality (benign crash of an eating process)",
        header=("algorithm", "starvation radius", "starving processes"),
        commentary=(
            "The paper's program and the Choy–Singh baseline contain the "
            "crash within distance 2; hygienic's blocked chain covers the "
            "whole line."
        ),
        shards=shards,
        build_rows=build_rows,
        build_metrics=build_metrics,
    )


def _stabilization_spec(config: SuiteConfig) -> SectionSpec:
    points = (
        (f"line:{config.line_n}", "invariant"),
        # literal-threshold I may be unsatisfiable on rings (see DESIGN.md
        # 4a); measure NC restoration instead.
        (f"ring:{config.line_n}", "nc"),
    )
    shards: List[Shard] = []
    for topology, predicate in points:
        for trial in range(config.trials):
            shards.append(
                Shard(
                    "stabilize",
                    {
                        "topology": topology,
                        "algorithm": "na-diners",
                        "predicate": predicate,
                        "plant_cycle": False,
                        "max_steps": config.max_steps,
                        "check_every": 4,
                        "trial": trial,
                    },
                    # Historical per-trial seed schedule of convergence_study.
                    seed=config.seed * 10_007 + trial,
                )
            )

    def build_rows(results: Sequence[Mapping]) -> List[Tuple]:
        rows: List[Tuple] = []
        for i, (topology, _) in enumerate(points):
            chunk = results[i * config.trials : (i + 1) * config.trials]
            converged = [r for r in chunk if r["converged"]]
            steps = [r["steps"] for r in converged if r["steps"] is not None]
            mean = sum(steps) / len(steps) if steps else math.nan
            rows.append(
                (
                    topology.replace(":", "(") + ")",
                    f"{len(converged)}/{config.trials}",
                    f"{mean:.0f}",
                    max(steps) if steps else 0,
                )
            )
        return rows

    def build_metrics(results: Sequence[Mapping]) -> Mapping[str, float]:
        converged = [r for r in results if r["converged"]]
        steps = [r["steps"] for r in converged if r["steps"] is not None]
        return {
            "converged_fraction": len(converged) / len(results) if results else 0.0,
            "mean_steps": sum(steps) / len(steps) if steps else 0.0,
            "max_steps": max(steps) if steps else 0,
        }

    return SectionSpec(
        title="Stabilization from random corruption",
        header=("topology", "converged", "mean steps", "max steps"),
        commentary=(
            "Theorem 1: every trial converges to the invariant I from a "
            "fully randomized state."
        ),
        shards=tuple(shards),
        build_rows=build_rows,
        build_metrics=build_metrics,
    )


def _throughput_spec(config: SuiteConfig) -> SectionSpec:
    shards = tuple(
        Shard(
            "throughput",
            {
                "topology": f"ring:{config.line_n}",
                "algorithm": algorithm,
                "window": config.window,
            },
            seed=config.seed,
        )
        for algorithm in _THROUGHPUT_ALGORITHMS
    )

    def build_rows(results: Sequence[Mapping]) -> List[Tuple]:
        return [
            (
                algorithm,
                f"{result['per_1000']:.1f}",
                f"{result['jain']:.3f}",
                result["min_eats"],
            )
            for algorithm, result in zip(_THROUGHPUT_ALGORITHMS, results)
        ]

    def build_metrics(results: Sequence[Mapping]) -> Mapping[str, float]:
        by_algorithm = dict(zip(_THROUGHPUT_ALGORITHMS, results))
        return {
            "na_diners_per_1000": round(by_algorithm["na-diners"]["per_1000"], 6),
            "min_jain": round(min(r["jain"] for r in results), 6),
            "min_meals": min(r["min_eats"] for r in results),
        }

    return SectionSpec(
        title="Fault-free throughput and fairness",
        header=("algorithm", "meals/1k steps", "jain index", "min meals"),
        commentary=(
            "Liveness: everyone eats under every algorithm.  The paper's "
            "program pays a measurable premium over hygienic for its two "
            "tolerances; static fork ordering is positionally unfair."
        ),
        shards=shards,
        build_rows=build_rows,
        build_metrics=build_metrics,
    )


def _malicious_spec(config: SuiteConfig) -> SectionSpec:
    malices = (5, 40)
    shards = tuple(
        Shard(
            "malicious",
            {
                "topology": f"line:{config.line_n}",
                "algorithm": "na-diners",
                "malicious_steps": malice,
                "warmup": 1000,
                "recover_budget": config.max_steps,
                "window": config.window,
            },
            seed=config.seed,
        )
        for malice in malices
    )

    def build_rows(results: Sequence[Mapping]) -> List[Tuple]:
        return [
            (
                malice,
                "yes" if result["recovered"] else "NO",
                "yes" if result["far_ok"] else "NO",
            )
            for malice, result in zip(malices, results)
        ]

    def build_metrics(results: Sequence[Mapping]) -> Mapping[str, float]:
        return {
            "recovered_fraction": (
                sum(1 for r in results if r["recovered"]) / len(results)
                if results
                else 0.0
            ),
            "far_ok_fraction": (
                sum(1 for r in results if r["far_ok"]) / len(results)
                if results
                else 0.0
            ),
        }

    return SectionSpec(
        title="Malicious crash: recovery and containment",
        header=("malice steps", "recovered to I", "far processes eating"),
        commentary=(
            "The headline property: after the arbitrary phase, the "
            "invariant returns and everything beyond distance 2 eats."
        ),
        shards=shards,
        build_rows=build_rows,
        build_metrics=build_metrics,
    )


def _masking_spec(config: SuiteConfig) -> SectionSpec:
    seeds = range(3)
    shards = tuple(
        Shard(
            "masking",
            {
                "topology": f"ring:{max(6, config.line_n // 2)}",
                "algorithm": "na-diners",
                "victim": 1,
                "malicious_steps": 100,
                "observe": config.window // 2,
            },
            seed=config.seed + offset,
        )
        for offset in seeds
    )

    def build_rows(results: Sequence[Mapping]) -> List[Tuple]:
        return [
            (offset, result["faulty_involved"], result["clean_pair"])
            for offset, result in zip(seeds, results)
        ]

    def build_metrics(results: Sequence[Mapping]) -> Mapping[str, float]:
        return {
            "faulty_involved_total": sum(r["faulty_involved"] for r in results),
            "clean_pair_total": sum(r["clean_pair"] for r in results),
        }

    return SectionSpec(
        title="Masking census during the arbitrary phase",
        header=("seed", "faulty-involved violations", "clean-pair violations"),
        commentary=(
            "Every safety violation during malice involves the faulty "
            "process; two healthy neighbours never violate — the paper's "
            "future-work masking gap is confined to the crash's own edges."
        ),
        shards=shards,
        build_rows=build_rows,
        build_metrics=build_metrics,
    )


def suite_specs(config: SuiteConfig) -> List[SectionSpec]:
    """Every section of the suite as a campaign spec, in report order."""
    return [
        _locality_spec(config),
        _stabilization_spec(config),
        _throughput_spec(config),
        _malicious_spec(config),
        _masking_spec(config),
    ]


def suite_metrics(result: SuiteResult, specs: Optional[Sequence[SectionSpec]] = None):
    """A metrics registry holding every section's scalar snapshot.

    One gauge per ``Section.metrics`` entry, named ``suite/<slug>/<metric>``
    (e.g. ``suite/failure-locality/na_diners_radius``).  All values come from
    the deterministic parts of the shard records, so the registry — and the
    file ``run_suite(metrics_out=...)`` writes from it — is byte-stable for a
    fixed config and seed.
    """
    from ..obs.metrics import MetricsRegistry

    if specs is None:
        specs = suite_specs(result.config)
    registry = MetricsRegistry()
    for spec, section in zip(specs, result.sections):
        slug = spec.slug()
        for name, value in sorted(section.metrics.items()):
            registry.gauge(f"suite/{slug}/{name}").set(value)
    return registry


def run_suite(
    config: SuiteConfig | None = None,
    *,
    jobs: int = 1,
    records_path=None,
    metrics_out=None,
) -> SuiteResult:
    """Run every section's campaign and collect the tables.

    ``jobs`` fans the union of all sections' shards across a worker pool
    (``1`` = sequential, in-process).  ``records_path`` streams the shard
    records to a JSONL checkpoint file: a re-run against the same file
    skips every shard already recorded.  ``metrics_out`` additionally writes
    the sections' scalar snapshots (plus campaign-level aggregates) as a
    metrics JSONL file.
    """
    from ..campaign.runner import campaign_metrics, run_shards

    config = config or SuiteConfig()
    specs = suite_specs(config)
    all_shards = [shard for spec in specs for shard in spec.shards]
    campaign = run_shards(all_shards, jobs=jobs, out_path=records_path)

    result = SuiteResult(config=config)
    for spec in specs:
        results = [dict(campaign.records[shard.key].result) for shard in spec.shards]
        result.sections.append(spec.section(results))

    if metrics_out is not None:
        from ..obs.metrics import write_metrics

        # Section gauges plus campaign-level aggregates in one registry;
        # include_meta=False drops the wall-time timer, so the file is a
        # deterministic function of (config, seed).
        registry = suite_metrics(result, specs)
        campaign_metrics(campaign.records, registry)
        header = {
            "source": "suite",
            "mode": "quick" if config.quick else "full",
            "seed": config.seed,
            "sections": len(result.sections),
            "shards": campaign.total,
        }
        write_metrics(metrics_out, registry, header=header, include_meta=False)
    return result


def to_markdown(result: SuiteResult) -> str:
    """Render a :class:`SuiteResult` as a self-contained markdown report."""
    mode = "quick" if result.config.quick else "full"
    lines = [
        "# repro experiment suite",
        "",
        f"Mode: **{mode}** (seed {result.config.seed}, "
        f"n={result.config.line_n}, window={result.config.window}).",
        "",
    ]
    for section in result.sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("| " + " | ".join(section.header) + " |")
        lines.append("|" + "|".join("---" for _ in section.header) + "|")
        for row in section.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append("")
        if section.commentary:
            lines.append(section.commentary)
            lines.append("")
    return "\n".join(lines)
