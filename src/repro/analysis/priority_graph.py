"""Priority-graph analytics.

The priority graph (the orientation of the neighbour relation stored in the
shared edge variables) is the data structure all of the paper's arguments
revolve around.  This module extracts it from a configuration and answers
the questions the proofs ask: is it acyclic, what are the waiting chains,
how do the ``depth`` estimates compare with true descendant distances.

networkx is used when available for the export helper; everything else is
dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.predicates import priority_edges
from ..core.state import VAR_DEPTH
from ..sim.configuration import Configuration
from ..sim.topology import Pid


@dataclass(frozen=True)
class PriorityGraphStats:
    """Summary of one configuration's priority graph."""

    n: int
    edges: int
    live_acyclic: bool
    longest_live_chain: int  #: longest directed path through live processes
    cycles: Tuple[Tuple[Pid, ...], ...]  #: simple cycles through live processes
    sinks: Tuple[Pid, ...]  #: processes with no descendants (lowest priority)
    sources: Tuple[Pid, ...]  #: processes with no ancestors (highest priority)


def _live_adjacency(config: Configuration) -> Dict[Pid, List[Pid]]:
    faulty = config.faulty
    adjacency: Dict[Pid, List[Pid]] = {
        p: [] for p in config.topology.nodes if p not in faulty
    }
    for ancestor, descendant in priority_edges(config):
        if ancestor in adjacency and descendant in adjacency:
            adjacency[ancestor].append(descendant)
    return adjacency


def find_live_cycles(
    config: Configuration, *, limit: int = 16
) -> Tuple[Tuple[Pid, ...], ...]:
    """Up to ``limit`` simple directed cycles through live processes.

    Uses iterative DFS with an on-stack path; each discovered cycle is
    canonicalised (rotated to start at its smallest node by node order) and
    deduplicated.
    """
    adjacency = _live_adjacency(config)
    order = {p: i for i, p in enumerate(config.topology.nodes)}
    found: Dict[Tuple[Pid, ...], None] = {}

    for start in adjacency:
        stack: List[Tuple[Pid, int]] = [(start, 0)]
        path: List[Pid] = [start]
        on_path = {start}
        while stack and len(found) < limit:
            node, index = stack[-1]
            children = adjacency[node]
            if index >= len(children):
                stack.pop()
                path.pop()
                on_path.discard(node)
                continue
            stack[-1] = (node, index + 1)
            child = children[index]
            if child in on_path:
                cut = path.index(child)
                cycle = tuple(path[cut:])
                rotate = min(range(len(cycle)), key=lambda i: order[cycle[i]])
                canonical = cycle[rotate:] + cycle[:rotate]
                found[canonical] = None
            elif child in adjacency:
                stack.append((child, 0))
                path.append(child)
                on_path.add(child)
        if len(found) >= limit:
            break
    return tuple(found)


def longest_live_chain(config: Configuration) -> int:
    """Length (node count) of the longest directed live path; counts waiting
    depth.  Returns ``len(live)`` when a live cycle makes chains unbounded."""
    adjacency = _live_adjacency(config)
    memo: Dict[Pid, int] = {}
    ON_STACK = -1

    def dfs(p: Pid) -> Optional[int]:
        cached = memo.get(p)
        if cached == ON_STACK:
            return None  # cycle
        if cached is not None:
            return cached
        memo[p] = ON_STACK
        best = 1
        for q in adjacency[p]:
            below = dfs(q)
            if below is None:
                return None
            best = max(best, 1 + below)
        memo[p] = best
        return best

    longest = 0
    for p in adjacency:
        value = dfs(p)
        if value is None:
            return len(adjacency)
        longest = max(longest, value)
    return longest


def graph_stats(config: Configuration) -> PriorityGraphStats:
    """All priority-graph summary statistics for one configuration."""
    adjacency = _live_adjacency(config)
    cycles = find_live_cycles(config)
    in_degree: Dict[Pid, int] = {p: 0 for p in adjacency}
    for p, children in adjacency.items():
        for q in children:
            in_degree[q] += 1
    return PriorityGraphStats(
        n=len(config.topology),
        edges=len(config.topology.edges),
        live_acyclic=not cycles,
        longest_live_chain=longest_live_chain(config),
        cycles=cycles,
        sinks=tuple(p for p, children in adjacency.items() if not children),
        sources=tuple(p for p, d in in_degree.items() if d == 0),
    )


def depth_errors(config: Configuration) -> Dict[Pid, int]:
    """Per live process: ``depth.p - true distance to farthest live
    descendant``.  Zero everywhere means the estimates are exact; positive
    values are stale overestimates (harmless unless they exceed ``D``);
    negative values are underestimates ``fixdepth`` will correct.

    Only meaningful when the live priority graph is acyclic.
    """
    adjacency = _live_adjacency(config)
    memo: Dict[Pid, int] = {}

    def true_depth(p: Pid) -> int:
        if p in memo:
            return memo[p]
        memo[p] = 0  # temporarily, guards against unexpected cycles
        value = 0
        for q in adjacency[p]:
            value = max(value, 1 + true_depth(q))
        memo[p] = value
        return value

    return {
        p: config.local(p, VAR_DEPTH) - true_depth(p) for p in adjacency
    }


def to_networkx(config: Configuration):
    """Export the full priority graph as a ``networkx.DiGraph``.

    Node attributes: ``state`` and ``dead``; requires networkx.
    """
    import networkx as nx

    graph = nx.DiGraph()
    faulty = config.faulty
    for p in config.topology.nodes:
        graph.add_node(p, state=config.local(p, "state"), dead=p in faulty)
    for ancestor, descendant in priority_edges(config):
        graph.add_edge(ancestor, descendant)
    return graph
