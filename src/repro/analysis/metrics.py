"""Throughput, fairness, and per-step safety monitoring (E4, E5).

* :func:`throughput_report` — eats per process over a run, with the fairness
  statistics the liveness property implies (every hungry process eats, so no
  process's share collapses to zero);
* :class:`StepMonitor` / :func:`run_monitored` — evaluate arbitrary
  configuration functions after every engine step, used by the safety
  experiment to watch the simultaneously-eating-pairs count (Theorem 3 says
  it never increases once the invariant holds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from ..core.predicates import eating_pairs
from ..sim.configuration import Configuration
from ..sim.engine import Engine
from ..sim.topology import Pid


@dataclass(frozen=True)
class ThroughputReport:
    """Eats per live process over one observation run."""

    algorithm: str
    steps: int
    eats: Mapping[Pid, int]

    @property
    def total(self) -> int:
        return sum(self.eats.values())

    @property
    def per_1000_steps(self) -> float:
        """System throughput: eats per 1000 engine steps."""
        return 1000.0 * self.total / self.steps if self.steps else math.nan

    @property
    def min_eats(self) -> int:
        return min(self.eats.values()) if self.eats else 0

    @property
    def max_eats(self) -> int:
        return max(self.eats.values()) if self.eats else 0

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over per-process eats (1.0 = perfectly fair).

        ``(Σx)² / (n · Σx²)`` — a standard scalar fairness measure; the
        liveness property implies it stays well above the ``1/n`` floor a
        starving process would drag it towards.
        """
        values = list(self.eats.values())
        if not values or not any(values):
            return math.nan
        square_sum = sum(v * v for v in values)
        return (sum(values) ** 2) / (len(values) * square_sum)

    @property
    def spread(self) -> float:
        """max/min eats ratio (∞ when someone starved)."""
        if not self.eats:
            return math.nan
        lo = self.min_eats
        return math.inf if lo == 0 else self.max_eats / lo


def throughput_report(engine: Engine, steps: int) -> ThroughputReport:
    """Run ``engine`` for ``steps`` and report the eats delta per process."""
    before = dict(engine.action_counts)
    result = engine.run(steps)
    enter = engine.system.algorithm.enter_action
    eats: Dict[Pid, int] = {}
    for pid in engine.system.pids:
        if engine.system.is_live(pid):
            key = (pid, enter)
            eats[pid] = engine.action_counts.get(key, 0) - before.get(key, 0)
    return ThroughputReport(
        algorithm=engine.system.algorithm.name,
        steps=result.steps,
        eats=eats,
    )


MonitorFn = Callable[[Configuration], Any]


@dataclass
class StepMonitor:
    """Samples a configuration function after every monitored step."""

    name: str
    fn: MonitorFn
    series: List[Any] = field(default_factory=list)

    def sample(self, config: Configuration) -> None:
        self.series.append(self.fn(config))

    def is_non_increasing(self) -> bool:
        """True when the recorded numeric series never increases."""
        return all(b <= a for a, b in zip(self.series, self.series[1:]))

    def final(self) -> Any:
        return self.series[-1] if self.series else None


def eating_pairs_count(config: Configuration) -> int:
    """Number of neighbour pairs simultaneously eating (Theorem 3's metric)."""
    return len(eating_pairs(config))


def live_eating_pairs_count(config: Configuration) -> int:
    """Like :func:`eating_pairs_count` but ignoring all-dead pairs."""
    faulty = config.faulty
    return sum(
        1 for e in eating_pairs(config) if not all(p in faulty for p in e)
    )


def run_monitored(
    engine: Engine,
    monitors: Sequence[StepMonitor],
    max_steps: int,
    *,
    sample_every: int = 1,
) -> int:
    """Step ``engine`` up to ``max_steps``, sampling all monitors.

    Monitors see the initial configuration and then every
    ``sample_every``-th configuration.  Returns the number of steps taken.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be positive")
    snapshot = engine.system.snapshot()
    for monitor in monitors:
        monitor.sample(snapshot)
    taken = 0
    while taken < max_steps:
        if not engine.step():
            break
        taken += 1
        if taken % sample_every == 0:
            snapshot = engine.system.snapshot()
            for monitor in monitors:
                monitor.sample(snapshot)
    return taken
