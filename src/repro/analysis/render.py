"""ASCII rendering of configurations — for examples, demos, and debugging.

:func:`render_configuration` draws one line per process (state, depth,
colour, crash status) plus the priority orientation of every edge;
:func:`render_strip` draws a compact one-line strip (great for animating
line/ring topologies step by step).
"""

from __future__ import annotations

from typing import List

from ..core.predicates import red_set
from ..core.state import VAR_DEPTH, VAR_STATE
from ..sim.configuration import Configuration
from ..sim.topology import Pid

#: Glyph per T/H/E state.
STATE_GLYPHS = {"T": ".", "H": "?", "E": "#"}


def render_configuration(config: Configuration, *, color: bool = True) -> str:
    """A multi-line dump: processes, then priority edges.

    ``color`` here means the paper's red/green classification, rendered as
    a textual tag (no terminal escapes — output must survive logs).
    """
    topology = config.topology
    reds = red_set(config) if color else frozenset()
    lines: List[str] = []
    for pid in topology.nodes:
        state = config.local(pid, VAR_STATE)
        try:
            depth = config.local(pid, VAR_DEPTH)
            depth_part = f" depth={depth}"
        except Exception:
            depth_part = ""
        if pid in config.dead:
            tag = "DEAD"
        elif pid in config.malicious:
            tag = "MALICIOUS"
        elif color:
            tag = "red" if pid in reds else "green"
        else:
            tag = "live"
        lines.append(f"{pid!r:>6} [{state}]{depth_part} ({tag})")
    order = {p: i for i, p in enumerate(topology.nodes)}
    for e in sorted(topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))):
        p, q = sorted(e, key=lambda x: order[x])
        value = config.edge_value(p, q)
        arrow = f"{p!r} -> {q!r}" if value == p else f"{q!r} -> {p!r}"
        lines.append(f"        edge {arrow}")
    return "\n".join(lines)


def render_strip(config: Configuration, order: List[Pid] | None = None) -> str:
    """A one-line strip like ``.?#?.`` with crash markers.

    ``.`` thinking, ``?`` hungry, ``#`` eating; dead processes are rendered
    as ``x`` and malicious ones as ``!`` regardless of their frozen state.
    """
    nodes = order if order is not None else list(config.topology.nodes)
    cells = []
    for pid in nodes:
        if pid in config.dead:
            cells.append("x")
        elif pid in config.malicious:
            cells.append("!")
        else:
            cells.append(STATE_GLYPHS.get(config.local(pid, VAR_STATE), "?"))
    return "".join(cells)
