"""repro.net — the live cluster runtime.

The execution substrate that takes the §4 message-passing processes out of
the in-process simulator and onto real asyncio TCP sockets:

* :mod:`repro.net.codec` — versioned, length-prefixed, CRC-guarded wire
  frames with a garbage-tolerant incremental decoder (the wire image of
  the paper's arbitrary-initial-channel model);
* :mod:`repro.net.wire_channel` — a simulator channel that round-trips
  every payload through the codec, proving transport/simulator parity;
* :mod:`repro.net.node` — the node daemon hosting an unchanged
  :class:`~repro.mp.node.MpProcess` behind sockets, plus the lock-service
  process;
* :mod:`repro.net.chaos` — seeded, reproducible fault schedules applied
  by socket-level link proxies (delay, drop, duplicate, reorder,
  partition, malicious garbage-then-halt);
* :mod:`repro.net.cluster` — the supervisor that runs an N-node topology
  on localhost with observability artefacts;
* :mod:`repro.net.lock` — the client API and the soak harness that audits
  safety from the emitted event stream.
"""

from .chaos import (
    EVENT_KINDS,
    ChaosController,
    ChaosSchedule,
    FaultEvent,
    LinkProfile,
    LinkProxy,
    build_schedule,
    validate_schedule,
)
from .cluster import (
    EVENT_SOURCES,
    ClusterConfig,
    ClusterResult,
    ClusterSupervisor,
    MetricsEndpoint,
    RestartPolicy,
    cluster_metrics,
    merge_counters,
    read_cluster_events,
    run_cluster,
    sanitize_node,
    write_cluster_events,
    write_cluster_metrics,
)
from .codec import (
    Decoder,
    Frame,
    WIRE_BINARY_VERSION,
    WIRE_TRACE_VERSION,
    WIRE_VERSION,
    CodecError,
    decode_message,
    encode_frame,
    encode_hello,
    encode_message,
    encode_request,
    encode_response,
    hello_fields,
)
from .lock import (
    DEFAULT_ACQUIRE_TIMEOUT,
    LockClient,
    LockError,
    SoakResult,
    Violation,
    attribute_violations,
    hold_intervals,
    neighbour_violations,
    soak,
)
from .node import LockDinerProcess, NetContext, NodeServer
from .wire_channel import WireChannel

__all__ = [
    "ChaosController",
    "ChaosSchedule",
    "FaultEvent",
    "LinkProfile",
    "LinkProxy",
    "build_schedule",
    "validate_schedule",
    "EVENT_KINDS",
    "EVENT_SOURCES",
    "ClusterConfig",
    "ClusterResult",
    "ClusterSupervisor",
    "RestartPolicy",
    "cluster_metrics",
    "merge_counters",
    "read_cluster_events",
    "run_cluster",
    "sanitize_node",
    "write_cluster_events",
    "write_cluster_metrics",
    "Decoder",
    "Frame",
    "MetricsEndpoint",
    "WIRE_BINARY_VERSION",
    "WIRE_TRACE_VERSION",
    "WIRE_VERSION",
    "CodecError",
    "decode_message",
    "encode_frame",
    "encode_request",
    "encode_response",
    "encode_hello",
    "encode_message",
    "hello_fields",
    "DEFAULT_ACQUIRE_TIMEOUT",
    "LockClient",
    "LockError",
    "SoakResult",
    "Violation",
    "attribute_violations",
    "hold_intervals",
    "neighbour_violations",
    "soak",
    "LockDinerProcess",
    "NetContext",
    "NodeServer",
    "WireChannel",
]
