"""A simulator channel whose every payload crosses the wire codec.

:class:`WireChannel` is the bridge between the two substrates: it plugs
into :class:`~repro.mp.engine.MpEngine` via ``channel_factory`` and pushes
each accepted send through ``encode_message`` → byte stream → garbage-
tolerant :class:`~repro.net.codec.Decoder`, exactly the path a frame takes
between two live nodes.  Because the codec round-trips exactly, an engine
built on :class:`WireChannel` is step-for-step identical to one built on
plain :class:`~repro.mp.channel.Channel` for the same seed — the parity
test the live transport's correctness argument rests on.

It also mirrors fault semantics bit for bit: :meth:`corrupt` and
:meth:`inject_garbage` put raw bytes on the stream (not ready-made
messages), so the junk a test sees here is the same junk the chaos proxy
produces at the socket level — some discarded by the decoder, some
surviving as syntactically valid frames for ``on_message`` validation to
reject.
"""

from __future__ import annotations

import random

from ..mp.channel import Channel, PayloadFactory
from ..sim.topology import Pid
from .codec import Decoder, decode_message, encode_message
from ..mp.message import Message


class WireChannel(Channel):
    """One directed FIFO link carried as encoded bytes.

    Accepts the same constructor signature as :class:`Channel` so it can be
    passed as ``MpEngine(channel_factory=WireChannel)``.
    """

    def __init__(
        self,
        src: Pid,
        dst: Pid,
        capacity: int = 8,
        *,
        loss_probability: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(
            src, dst, capacity, loss_probability=loss_probability, rng=rng
        )
        self.decoder = Decoder()
        #: Frames that decoded but were not well-formed messages (junk that
        #: survived framing; the protocol layer never sees them).
        self.malformed_frames = 0

    def send(self, payload) -> bool:
        """Encode, stream, decode — then enqueue whatever survives."""
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.lost += 1
            return True
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        data = encode_message(Message(self.src, self.dst, tuple(payload)))
        self._feed(data)
        return True

    def inject_garbage(self, data: bytes) -> None:
        """Put arbitrary bytes on the stream — the chaos proxy's move.

        Whatever the decoder salvages (almost always nothing, thanks to the
        CRC) is enqueued like genuine traffic; the rest lands in the
        decoder's garbage counters.
        """
        self._feed(data)

    def _feed(self, data: bytes) -> None:
        for frame in self.decoder.feed(data):
            message = decode_message(frame)
            if message is None:
                self.malformed_frames += 1
                continue
            if len(self._queue) >= self.capacity:
                self.dropped += 1
                continue
            self._queue.append(message)

    # ------------------------------------------------------------- faults

    def corrupt(self, rng: random.Random, payload_factory: PayloadFactory) -> None:
        """Transient fault at wire level: random *bytes*, then random
        *encoded* junk payloads (both kinds of arbitrary initial content)."""
        self._queue.clear()
        self._feed(bytes(rng.randrange(256) for _ in range(rng.randint(0, 64))))
        for _ in range(rng.randint(0, self.capacity)):
            self._feed(
                encode_message(
                    Message(self.src, self.dst, tuple(payload_factory(rng)))
                )
            )
