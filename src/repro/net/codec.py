"""The versioned, length-prefixed wire codec of the live cluster.

One frame on the wire is::

    MAGIC(2) | version(1) | type(1) | length(4, big-endian) | crc32(4) | body

``body`` is canonical UTF-8 JSON.  Tuples inside payloads are encoded as
JSON arrays and restored recursively on decode — :class:`repro.mp.message.
Message` payloads are tuples by contract, and protocol code (e.g. the
Chandy–Misra ``edge_key`` check) compares them structurally, so the
round-trip must be exact: ``decode(encode(m)) == m``.

The decoder is **garbage tolerant** by construction, which is the wire-level
image of the paper's arbitrary-initial-channel model: a transient fault (or
the chaos proxy, or a maliciously crashing peer) may put arbitrary bytes on
a TCP stream, and the decoder must (a) never crash, (b) discard junk while
counting it, and (c) resynchronise on the next genuine frame.  Resync scans
for the magic; a candidate header is accepted only if version, type, and
length bounds hold *and* the CRC32 of the body matches — random bytes
masquerading as a frame have a ~2^-32 chance of surviving, and protocol
layers above still validate payload shape (defence in depth, exactly as
``on_message`` implementations do in the simulator).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..mp.message import Message

#: Bump on any incompatible change to the frame layout or body schema.
WIRE_VERSION = 1

MAGIC = b"RW"
HEADER_SIZE = 12
#: Upper bound on a body; a bogus length field past this is junk, not a
#: reason to buffer forever.
MAX_BODY = 1 << 20

#: Frame types.
T_HELLO = 1  #: protocol-version handshake, first frame of a peer link
T_MSG = 2  #: one :class:`Message` between neighbouring nodes
T_REQ = 3  #: lock-service client request (acquire/release)
T_RSP = 4  #: lock-service response (granted/released/error)

_TYPES = frozenset((T_HELLO, T_MSG, T_REQ, T_RSP))

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


class CodecError(ValueError):
    """A payload that cannot be put on the wire."""


def tuplify(value: Any) -> Any:
    """Restore tuple structure lost to JSON (lists become tuples, deeply)."""
    if isinstance(value, list):
        return tuple(tuplify(v) for v in value)
    if isinstance(value, dict):
        return {k: tuplify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: int
    body: Any

    @property
    def is_hello(self) -> bool:
        return self.type == T_HELLO


# ------------------------------------------------------------------ encode


def encode_frame(frame_type: int, body: Any) -> bytes:
    """One complete frame: header + canonical JSON body."""
    if frame_type not in _TYPES:
        raise CodecError(f"unknown frame type {frame_type!r}")
    try:
        payload = json.dumps(body, **_CANONICAL).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"body is not wire-encodable: {exc}") from None
    if len(payload) > MAX_BODY:
        raise CodecError(f"body too large ({len(payload)} bytes)")
    header = (
        MAGIC
        + bytes((WIRE_VERSION, frame_type))
        + len(payload).to_bytes(4, "big")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
    )
    return header + payload


def encode_message(message: Message) -> bytes:
    """A :class:`Message` as one ``T_MSG`` frame."""
    return encode_frame(
        T_MSG,
        {"src": message.src, "dst": message.dst, "payload": list(message.payload)},
    )


def encode_hello(node: Any, *, role: str = "peer") -> bytes:
    """The handshake frame: wire version + sender identity + role."""
    return encode_frame(
        T_HELLO, {"version": WIRE_VERSION, "node": node, "role": role}
    )


def decode_message(frame: Frame) -> Optional[Message]:
    """The :class:`Message` in a ``T_MSG`` frame, or ``None`` if malformed.

    Malformed here means "valid frame, wrong body shape" — possible when
    garbage happens to pass the CRC or a buggy/malicious peer sends a
    syntactically valid frame.  Junk yields ``None``, never an exception.
    """
    body = frame.body
    if frame.type != T_MSG or not isinstance(body, dict):
        return None
    if not {"src", "dst", "payload"} <= set(body):
        return None
    payload = body["payload"]
    if not isinstance(payload, (list, tuple)):
        return None
    return Message(
        src=tuplify(body["src"]),
        dst=tuplify(body["dst"]),
        payload=tuplify(list(payload)),
    )


def hello_fields(frame: Frame) -> Optional[Tuple[int, Any, str]]:
    """``(version, node, role)`` of a hello frame, or ``None`` if malformed."""
    body = frame.body
    if frame.type != T_HELLO or not isinstance(body, dict):
        return None
    version = body.get("version")
    if not isinstance(version, int):
        return None
    return version, tuplify(body.get("node")), str(body.get("role", "peer"))


# ------------------------------------------------------------------ decode


class Decoder:
    """Incremental, garbage-tolerant frame decoder for one byte stream.

    Feed it arbitrary chunks; it yields every complete valid frame and
    counts every byte it had to discard (``garbage_bytes``) plus how many
    times it lost sync (``resyncs``).  The counters are the wire-level
    analogue of the simulator's junk-payload statistics, and the chaos
    tests assert on them.
    """

    __slots__ = ("_buffer", "garbage_bytes", "resyncs", "frames_decoded")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.garbage_bytes = 0
        self.resyncs = 0
        self.frames_decoded = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data``; return all frames completed by it."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        buf = self._buffer
        while True:
            start = buf.find(MAGIC)
            if start < 0:
                # No magic anywhere: all junk except a possible partial
                # magic at the very end.
                keep = 1 if buf[-1:] == MAGIC[:1] else 0
                discard = len(buf) - keep
                if discard > 0:
                    self.garbage_bytes += discard
                    self.resyncs += 1
                    del buf[:discard]
                return
            if start > 0:
                self.garbage_bytes += start
                self.resyncs += 1
                del buf[:start]
            if len(buf) < HEADER_SIZE:
                return  # header not complete yet
            version, frame_type = buf[2], buf[3]
            length = int.from_bytes(buf[4:8], "big")
            crc = int.from_bytes(buf[8:12], "big")
            if (
                version != WIRE_VERSION
                or frame_type not in _TYPES
                or length > MAX_BODY
            ):
                # False magic: discard one byte and rescan.
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            if len(buf) < HEADER_SIZE + length:
                return  # body not complete yet
            body_bytes = bytes(buf[HEADER_SIZE : HEADER_SIZE + length])
            if zlib.crc32(body_bytes) & 0xFFFFFFFF != crc:
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            try:
                body = json.loads(body_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            del buf[: HEADER_SIZE + length]
            self.frames_decoded += 1
            yield Frame(type=frame_type, body=body)
