"""The versioned, length-prefixed wire codec of the live cluster.

One frame on the wire is::

    MAGIC(2) | version(1) | type(1) | length(4, big-endian) | crc32(4) | body

``body`` is canonical UTF-8 JSON (v1), a binary trace block followed by
JSON (v2), or a struct-packed binary record (v3, lock-service frames
only).  Tuples inside JSON payloads are encoded as arrays and restored
recursively on decode — :class:`repro.mp.message.Message` payloads are
tuples by contract, and protocol code (e.g. the Chandy–Misra ``edge_key``
check) compares them structurally, so the round-trip must be exact:
``decode(encode(m)) == m``.  A v3 frame decodes into the same body dict
its JSON twin would, so the protocol layers never see the difference.

The decoder is **garbage tolerant** by construction, which is the wire-level
image of the paper's arbitrary-initial-channel model: a transient fault (or
the chaos proxy, or a maliciously crashing peer) may put arbitrary bytes on
a TCP stream, and the decoder must (a) never crash, (b) discard junk while
counting it, and (c) resynchronise on the next genuine frame.  Resync scans
for the magic; a candidate header is accepted only if version, type, and
length bounds hold *and* the CRC32 of the body matches — random bytes
masquerading as a frame have a ~2^-32 chance of surviving, and protocol
layers above still validate payload shape (defence in depth, exactly as
``on_message`` implementations do in the simulator).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..mp.message import Message

#: Bump on any incompatible change to the frame layout or body schema.
WIRE_VERSION = 1
#: The traced frame layout: identical header, but the payload opens with a
#: fixed binary trace block — ``lc`` (u64 BE) + span-id length (u8) + span
#: id bytes — before the canonical JSON body.  A versioned *extension*:
#: v1 frames carry no block and still decode; the decoder accepts both.
#: The block is binary (not JSON keys) so stamping stays off the JSON hot
#: path — the ``net/codec/roundtrip`` bench gates the overhead under 10%.
WIRE_TRACE_VERSION = 2

#: The binary frame layout of the gateway hot path: same 12-byte header,
#: but the body is struct-packed, not JSON.  Only the lock-service types
#: (``T_REQ``/``T_RSP``) have a binary body schema — they are the frames a
#: front-end tier pushes by the million, and ``json.dumps``/``json.loads``
#: dominates their cost.  A v3 frame decodes into the *same* body dict a
#: v1 JSON frame would, so every consumer above the codec is agnostic; the
#: ``net/codec/binary-roundtrip`` bench kernel gates the ≥2× win.
WIRE_BINARY_VERSION = 3
_VERSIONS = frozenset((WIRE_VERSION, WIRE_TRACE_VERSION, WIRE_BINARY_VERSION))

#: ``lc`` (u64 big-endian) + span-id length (u8) of a v2 trace block.
_TRACE_BLOCK = struct.Struct(">QB")
MAX_SPAN_ID = 255  #: span ids are short (``node/epoch/counter``)

#: The complete v3 header in one pack: magic, version, type, length, crc.
_HEADER = struct.Struct(">2sBBII")
#: v3 ``T_REQ`` body head: op code, flags, target node index, id length.
_REQ_HEAD = struct.Struct(">BBHB")
#: v3 ``T_RSP`` body head: op code, ok, retry-after (ms), id length.
_RSP_HEAD = struct.Struct(">BBHB")
_FLAG_NODE = 1  #: REQ flags bit: the node field is meaningful

_OP_CODES = {"acquire": 1, "release": 2}
_OP_NAMES = {1: "acquire", 2: "release"}
MAX_REQUEST_ID = 255  #: request ids are short (``client.epoch.counter``)
MAX_NODE_INDEX = 0xFFFF
MAX_RETRY_MS = 0xFFFF

MAGIC = b"RW"
HEADER_SIZE = 12
#: Upper bound on a body; a bogus length field past this is junk, not a
#: reason to buffer forever.
MAX_BODY = 1 << 20

#: Frame types.
T_HELLO = 1  #: protocol-version handshake, first frame of a peer link
T_MSG = 2  #: one :class:`Message` between neighbouring nodes
T_REQ = 3  #: lock-service client request (acquire/release)
T_RSP = 4  #: lock-service response (granted/released/error)

_TYPES = frozenset((T_HELLO, T_MSG, T_REQ, T_RSP))

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


class CodecError(ValueError):
    """A payload that cannot be put on the wire."""


def tuplify(value: Any) -> Any:
    """Restore tuple structure lost to JSON (lists become tuples, deeply)."""
    if isinstance(value, list):
        return tuple(tuplify(v) for v in value)
    if isinstance(value, dict):
        return {k: tuplify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame.

    ``lc`` and ``span`` are the causal stamps of a v2 (traced) frame —
    ``None`` on plain v1 frames, so old traffic is indistinguishable from
    untraced traffic at the consumer.  ``version`` records the wire layout
    the frame arrived in, so a server can answer a binary-speaking client
    in kind without a negotiation round trip.
    """

    type: int
    body: Any
    lc: Optional[int] = None
    span: Optional[str] = None
    version: int = WIRE_VERSION

    @property
    def is_hello(self) -> bool:
        return self.type == T_HELLO


# ------------------------------------------------------------------ encode


def encode_frame(
    frame_type: int,
    body: Any,
    *,
    lc: Optional[int] = None,
    span: Optional[str] = None,
) -> bytes:
    """One complete frame: header + (trace block +) canonical JSON body.

    With ``lc`` the frame is emitted at :data:`WIRE_TRACE_VERSION` and the
    payload opens with the binary trace block; without it the frame is a
    plain v1 frame, byte-identical to what pre-tracing builds produced.
    """
    if frame_type not in _TYPES:
        raise CodecError(f"unknown frame type {frame_type!r}")
    try:
        payload = json.dumps(body, **_CANONICAL).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"body is not wire-encodable: {exc}") from None
    if lc is None:
        version = WIRE_VERSION
    else:
        if not 0 <= lc < 1 << 64:
            raise CodecError(f"lamport stamp out of range: {lc!r}")
        span_bytes = ("" if span is None else span).encode("utf-8")
        if len(span_bytes) > MAX_SPAN_ID:
            raise CodecError(f"span id too long ({len(span_bytes)} bytes)")
        payload = _TRACE_BLOCK.pack(lc, len(span_bytes)) + span_bytes + payload
        version = WIRE_TRACE_VERSION
    if len(payload) > MAX_BODY:
        raise CodecError(f"body too large ({len(payload)} bytes)")
    header = (
        MAGIC
        + bytes((version, frame_type))
        + len(payload).to_bytes(4, "big")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
    )
    return header + payload


def encode_message(
    message: Message,
    *,
    lc: Optional[int] = None,
    span: Optional[str] = None,
) -> bytes:
    """A :class:`Message` as one ``T_MSG`` frame (traced when ``lc`` given)."""
    return encode_frame(
        T_MSG,
        {"src": message.src, "dst": message.dst, "payload": list(message.payload)},
        lc=lc,
        span=span,
    )


def _request_id_bytes(req_id: Any) -> bytes:
    """The id as short UTF-8 bytes, or a :class:`CodecError`."""
    if not isinstance(req_id, str):
        raise CodecError(f"binary frames need string ids, got {req_id!r}")
    ident = req_id.encode("utf-8")
    if not 0 < len(ident) <= MAX_REQUEST_ID:
        raise CodecError(f"request id length {len(ident)} out of range")
    return ident


def encode_request(op: str, req_id: Any, *, node: Optional[int] = None) -> bytes:
    """One lock-service request as a binary v3 ``T_REQ`` frame.

    Decodes into the same body dict the JSON path produces — ``op``, ``id``,
    and (for acquires) ``span`` mirroring the id, exactly as
    :class:`~repro.net.lock.LockClient` sends them — plus ``node`` when a
    gateway routes on behalf of a logical client.
    """
    code = _OP_CODES.get(op)
    if code is None:
        raise CodecError(f"op {op!r} has no binary encoding")
    ident = _request_id_bytes(req_id)
    flags = 0
    node_index = 0
    if node is not None:
        if not 0 <= node <= MAX_NODE_INDEX:
            raise CodecError(f"node index {node!r} out of range")
        flags |= _FLAG_NODE
        node_index = node
    payload = _REQ_HEAD.pack(code, flags, node_index, len(ident)) + ident
    return (
        _HEADER.pack(
            MAGIC,
            WIRE_BINARY_VERSION,
            T_REQ,
            len(payload),
            zlib.crc32(payload) & 0xFFFFFFFF,
        )
        + payload
    )


def encode_response(
    op: str,
    req_id: Any,
    ok: bool,
    *,
    error: Optional[str] = None,
    retry_after_s: Optional[float] = None,
) -> bytes:
    """One lock-service response as a binary v3 ``T_RSP`` frame.

    ``error`` is the typed refusal (``"retry"`` for admission sheds,
    ``"bad-op"`` for protocol misuse); ``retry_after_s`` is the shed
    back-off hint, carried as whole milliseconds.
    """
    code = _OP_CODES.get(op)
    if code is None:
        raise CodecError(f"op {op!r} has no binary encoding")
    ident = _request_id_bytes(req_id)
    err = ("" if error is None else error).encode("utf-8")
    if len(err) > 255:
        raise CodecError(f"error string too long ({len(err)} bytes)")
    retry_ms = 0
    if retry_after_s is not None:
        if not 0 <= retry_after_s <= MAX_RETRY_MS / 1000.0:
            raise CodecError(f"retry_after_s {retry_after_s!r} out of range")
        retry_ms = int(round(retry_after_s * 1000.0))
    payload = (
        _RSP_HEAD.pack(code, 1 if ok else 0, retry_ms, len(ident))
        + ident
        + bytes((len(err),))
        + err
    )
    return (
        _HEADER.pack(
            MAGIC,
            WIRE_BINARY_VERSION,
            T_RSP,
            len(payload),
            zlib.crc32(payload) & 0xFFFFFFFF,
        )
        + payload
    )


def _decode_binary_body(frame_type: int, body: bytes) -> Optional[Any]:
    """The body dict of a v3 frame, or ``None`` if the bytes are junk.

    The CRC already passed, so a malformed body here is garbage that got
    lucky (or a buggy peer); the decoder treats ``None`` exactly like a
    failed JSON parse — defence in depth, same as the v2 trace block.
    """
    if frame_type == T_REQ:
        if len(body) < _REQ_HEAD.size:
            return None
        code, flags, node_index, id_len = _REQ_HEAD.unpack_from(body, 0)
        op = _OP_NAMES.get(code)
        end = _REQ_HEAD.size + id_len
        if op is None or id_len == 0 or len(body) != end:
            return None
        try:
            ident = body[_REQ_HEAD.size : end].decode("utf-8")
        except UnicodeDecodeError:
            return None
        decoded: dict = {"op": op, "id": ident}
        if op == "acquire":
            decoded["span"] = ident
        if flags & _FLAG_NODE:
            decoded["node"] = node_index
        return decoded
    if frame_type == T_RSP:
        if len(body) < _RSP_HEAD.size:
            return None
        code, ok, retry_ms, id_len = _RSP_HEAD.unpack_from(body, 0)
        op = _OP_NAMES.get(code)
        id_end = _RSP_HEAD.size + id_len
        if op is None or id_len == 0 or len(body) < id_end + 1:
            return None
        err_len = body[id_end]
        if len(body) != id_end + 1 + err_len:
            return None
        try:
            ident = body[_RSP_HEAD.size : id_end].decode("utf-8")
            err = body[id_end + 1 :].decode("utf-8")
        except UnicodeDecodeError:
            return None
        decoded = {"op": op, "id": ident, "ok": bool(ok)}
        if err:
            decoded["error"] = err
        if retry_ms:
            decoded["retry_after_s"] = retry_ms / 1000.0
        return decoded
    return None  # only the lock-service types have a binary schema


def encode_hello(node: Any, *, role: str = "peer") -> bytes:
    """The handshake frame: wire version + sender identity + role."""
    return encode_frame(
        T_HELLO, {"version": WIRE_VERSION, "node": node, "role": role}
    )


def decode_message(frame: Frame) -> Optional[Message]:
    """The :class:`Message` in a ``T_MSG`` frame, or ``None`` if malformed.

    Malformed here means "valid frame, wrong body shape" — possible when
    garbage happens to pass the CRC or a buggy/malicious peer sends a
    syntactically valid frame.  Junk yields ``None``, never an exception.
    """
    body = frame.body
    if frame.type != T_MSG or not isinstance(body, dict):
        return None
    if not {"src", "dst", "payload"} <= set(body):
        return None
    payload = body["payload"]
    if not isinstance(payload, (list, tuple)):
        return None
    return Message(
        src=tuplify(body["src"]),
        dst=tuplify(body["dst"]),
        payload=tuplify(list(payload)),
    )


def hello_fields(frame: Frame) -> Optional[Tuple[int, Any, str]]:
    """``(version, node, role)`` of a hello frame, or ``None`` if malformed."""
    body = frame.body
    if frame.type != T_HELLO or not isinstance(body, dict):
        return None
    version = body.get("version")
    if not isinstance(version, int):
        return None
    return version, tuplify(body.get("node")), str(body.get("role", "peer"))


# ------------------------------------------------------------------ decode


class Decoder:
    """Incremental, garbage-tolerant frame decoder for one byte stream.

    Feed it arbitrary chunks; it yields every complete valid frame and
    counts every byte it had to discard (``garbage_bytes``) plus how many
    times it lost sync (``resyncs``).  The counters are the wire-level
    analogue of the simulator's junk-payload statistics, and the chaos
    tests assert on them.
    """

    __slots__ = ("_buffer", "garbage_bytes", "resyncs", "frames_decoded")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.garbage_bytes = 0
        self.resyncs = 0
        self.frames_decoded = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data``; return all frames completed by it."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[Frame]:
        buf = self._buffer
        while True:
            start = buf.find(MAGIC)
            if start < 0:
                # No magic anywhere: all junk except a possible partial
                # magic at the very end.
                keep = 1 if buf[-1:] == MAGIC[:1] else 0
                discard = len(buf) - keep
                if discard > 0:
                    self.garbage_bytes += discard
                    self.resyncs += 1
                    del buf[:discard]
                return
            if start > 0:
                self.garbage_bytes += start
                self.resyncs += 1
                del buf[:start]
            if len(buf) < HEADER_SIZE:
                return  # header not complete yet
            version, frame_type = buf[2], buf[3]
            length = int.from_bytes(buf[4:8], "big")
            crc = int.from_bytes(buf[8:12], "big")
            if (
                version not in _VERSIONS
                or frame_type not in _TYPES
                or length > MAX_BODY
            ):
                # False magic: discard one byte and rescan.
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            if len(buf) < HEADER_SIZE + length:
                return  # body not complete yet
            body_bytes = bytes(buf[HEADER_SIZE : HEADER_SIZE + length])
            if zlib.crc32(body_bytes) & 0xFFFFFFFF != crc:
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            if version == WIRE_BINARY_VERSION:
                binary_body = _decode_binary_body(frame_type, body_bytes)
                if binary_body is None:
                    self.garbage_bytes += 1
                    self.resyncs += 1
                    del buf[:1]
                    continue
                del buf[: HEADER_SIZE + length]
                self.frames_decoded += 1
                yield Frame(
                    type=frame_type, body=binary_body, version=version
                )
                continue
            lc: Optional[int] = None
            span: Optional[str] = None
            if version == WIRE_TRACE_VERSION:
                # Peel the trace block; a short or malformed one is junk
                # masquerading as a v2 frame (the CRC already passed, so
                # this is defence in depth, same as the JSON check below).
                if len(body_bytes) < _TRACE_BLOCK.size:
                    self.garbage_bytes += 1
                    self.resyncs += 1
                    del buf[:1]
                    continue
                lc, span_len = _TRACE_BLOCK.unpack_from(body_bytes, 0)
                end = _TRACE_BLOCK.size + span_len
                if len(body_bytes) < end:
                    self.garbage_bytes += 1
                    self.resyncs += 1
                    del buf[:1]
                    continue
                try:
                    raw_span = body_bytes[_TRACE_BLOCK.size : end].decode("utf-8")
                except UnicodeDecodeError:
                    self.garbage_bytes += 1
                    self.resyncs += 1
                    del buf[:1]
                    continue
                span = raw_span or None
                body_bytes = body_bytes[end:]
            try:
                body = json.loads(body_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.garbage_bytes += 1
                self.resyncs += 1
                del buf[:1]
                continue
            del buf[: HEADER_SIZE + length]
            self.frames_decoded += 1
            yield Frame(
                type=frame_type, body=body, lc=lc, span=span, version=version
            )
