"""The live node daemon: one §4 process served over asyncio TCP.

A :class:`NodeServer` hosts one :class:`~repro.mp.node.MpProcess` — the
same object that runs under :class:`~repro.mp.engine.MpEngine` — behind a
real socket transport:

* one listening socket accepts *inbound* peer links and lock clients;
* one outbound connection per neighbour (usually via a chaos proxy)
  carries this node's sends, with automatic reconnect;
* a tick loop fires :meth:`~repro.mp.node.MpProcess.on_tick` every
  ``tick_interval`` seconds — the wall-clock realisation of the engine's
  fairness assumption that every process takes infinitely many steps;
* every inbound byte goes through the garbage-tolerant
  :class:`~repro.net.codec.Decoder`, and every decoded ``T_MSG`` is
  validated (dst is me, src is a neighbour, per-link sequence number is
  fresh) before reaching ``on_message`` — the wire image of the model's
  "channels may hold arbitrary junk" discipline.

Per-link sequence numbers make duplication and reordering at the byte
level safe for token-carrying protocols: a stale or repeated frame is
discarded at the transport, so chaos ``dup``/``reorder`` degrade into
``drop`` (a liveness matter the protocols already own) instead of forging
a second fork (a safety matter they must never face).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from ..mp.diners_mp import DinersMpProcess, E as EATING, H as HUNGRY
from ..mp.message import Message
from ..mp.node import MpProcess
from ..obs.bus import EventBus
from ..obs.events import NetEventKind
from ..obs.flight import FlightRecorder
from ..obs.tracing import LamportClock, ROOT_SPAN, Span, SpanRecorder
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceEvent
from .codec import (
    CodecError,
    Decoder,
    Frame,
    T_MSG,
    T_REQ,
    WIRE_BINARY_VERSION,
    WIRE_VERSION,
    decode_message,
    encode_frame,
    encode_hello,
    encode_response,
    hello_fields,
    tuplify,
)

#: ``(host, port)`` of a peer's inbound socket (or its chaos proxy).
Address = Tuple[str, int]


class NetContext:
    """The live transport's :class:`~repro.mp.node.ProcessContext`.

    Handed to the hosted process on every tick and message, exactly like
    :class:`~repro.mp.node.MpContext` — ``send`` returns False when the
    link to ``dst`` is currently down, which the simulator models as a
    channel refusing a message.
    """

    __slots__ = ("_server",)

    def __init__(self, server: "NodeServer") -> None:
        self._server = server

    @property
    def pid(self) -> Pid:
        return self._server.pid

    @property
    def neighbors(self) -> Tuple[Pid, ...]:
        return self._server.topology.neighbors(self._server.pid)

    @property
    def topology(self) -> Topology:
        return self._server.topology

    def send(self, dst: Pid, payload: Tuple) -> bool:
        return self._server.send_message(dst, payload)


class LockDinerProcess(DinersMpProcess):
    """A Chandy–Misra philosopher exposed as a resource lock.

    ``demand`` counts outstanding client acquires; the process is hungry
    exactly while demand is positive.  Once eating, the meal is *held
    open* until the client releases — the node server tops the meal up
    every tick while ``holding`` — so "eating" and "client holds the
    lock" are the same interval, which is what the soak safety checker
    audits.
    """

    def __init__(self, pid: Pid, topology: Topology, *, seed: int = 0) -> None:
        super().__init__(
            pid,
            topology,
            needs=lambda: self.demand > 0,
            eat_ticks=2,
            seed=seed,
            repair=True,  # real links drop frames; see diners_mp docstring
        )
        self.demand = 0
        self.holding = False

    def on_tick(self, ctx) -> None:
        if self.state == EATING and self.holding:
            self._eating_remaining = max(self._eating_remaining, 2)
        super().on_tick(ctx)

    def grant_taken(self) -> None:
        """The server matched this meal to a waiting acquire."""
        self.demand = max(0, self.demand - 1)
        self.holding = True

    def release(self) -> None:
        """Client released: let the meal end on the next tick."""
        self.holding = False
        self._eating_remaining = min(self._eating_remaining, 1)


class _PeerLink:
    """State of one outbound neighbour connection."""

    __slots__ = ("address", "writer", "task", "seq", "retries")

    def __init__(self, address: Address) -> None:
        self.address = address
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None
        self.seq = 0
        self.retries = 0


class NodeServer:
    """One live node: listener + outbound peer links + tick loop."""

    def __init__(
        self,
        pid: Pid,
        topology: Topology,
        process: MpProcess,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval: float = 0.01,
        bus: EventBus | None = None,
        t0: float | None = None,
        epoch: int = 0,
        tracer: SpanRecorder | None = None,
        clock: LamportClock | None = None,
        flight: "FlightRecorder | None" = None,
    ) -> None:
        if pid not in topology:
            raise ValueError(f"{pid!r} is not in the topology")
        self.pid = pid
        self.topology = topology
        self.process = process
        self.host = host
        self.requested_port = port
        self.tick_interval = tick_interval
        self.bus = bus
        #: 0 for a node's first launch; bumped by the supervisor on restart.
        self.epoch = epoch
        self.port: Optional[int] = None
        self._t0 = t0
        self._server: asyncio.base_events.Server | None = None
        self._links: Dict[Pid, _PeerLink] = {}
        self._ctx = NetContext(self)
        self._tick_task: Optional[asyncio.Task] = None
        self._seq = 0
        self._running = False
        self._prev_state: Optional[str] = None
        # ---- causal tracing (both optional; the supervisor hands the SAME
        # recorder and clock to every incarnation of a node, so restarts
        # extend one per-node history and ``epoch`` tells the spans apart).
        self.tracer = tracer
        self.clock = clock if clock is not None else (
            LamportClock() if tracer is not None else None
        )
        # ---- flight recorder (optional): decoded/sent frame summaries go
        # into the node's bounded black box.  Like the tracer, the SAME
        # ring serves every incarnation, so a dump spans restarts.
        self.flight = flight
        self._root_span: Optional[Span] = None
        self._active_span: Optional[Span] = None  # granted lifecycle span
        self._hunger_span: Optional[Span] = None  # plain-diner hungry span
        #: Last payload written per neighbour — an identical re-send is the
        #: repair-mode retransmit the timeline attributes chaos latency to.
        self._last_sent: Dict[Pid, Tuple] = {}
        #: FIFO of ``(writer, request_id, span, binary)`` acquires awaiting
        #: a grant — ``binary`` remembers the wire layout the request came
        #: in on, so the grant goes back the same way.
        self._waiters: List[
            Tuple[asyncio.StreamWriter, Any, Optional[Span], bool]
        ] = []
        #: Connection currently holding the lock — its death releases the
        #: lease, else the meal stays topped up forever and starves the
        #: neighbourhood.
        self._holder: Optional[asyncio.StreamWriter] = None
        #: Open inbound connections, closed on :meth:`stop` so peers and
        #: clients observe the halt instead of a silent zombie socket.
        self._conns: set = set()
        # ---- counters surfaced as metrics by the supervisor
        self.msgs_in = 0
        self.msgs_out = 0
        self.send_failures = 0
        self.junk_frames = 0
        self.stale_frames = 0
        self.garbage_bytes = 0
        self.resyncs = 0
        self.ticks = 0
        self.grants = 0
        self.releases = 0
        self.retransmits = 0
        #: Per-peer retransmit counts (``repr(pid)`` keys), surfaced as the
        #: ``repro_edge_retransmits_total`` live metric.
        self.retransmits_by_peer: Dict[str, int] = {}

    # ------------------------------------------------------------- obs

    def _now(self) -> float:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return 0.0
        if self._t0 is None:
            self._t0 = loop.time()
        return round(loop.time() - self._t0, 6)

    def publish(self, kind: NetEventKind, detail: Optional[dict] = None) -> None:
        if self.bus is None:
            return
        body = {"t": self._now()}
        if detail:
            body.update(detail)
        self._seq += 1
        self.bus.publish(TraceEvent(self._seq, kind, self.pid, body))

    # ------------------------------------------------------------- tracing

    def _trace_open(
        self,
        name: str,
        *,
        parent: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        if self.tracer is None:
            return None
        span = self.tracer.open(
            name,
            lc=self.clock.tick(),
            t=self._now(),
            epoch=self.epoch,
            parent=parent,
            attrs=attrs,
        )
        self.publish(NetEventKind.SPAN_OPEN, {"span": span.span_id, "name": name})
        return span

    def _trace_event(
        self,
        span: Optional[Span],
        name: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self.tracer is None or span is None:
            return
        self.tracer.event(
            span, name, lc=self.clock.tick(), t=self._now(), detail=detail
        )

    def _trace_close(self, span: Optional[Span]) -> None:
        if self.tracer is None or span is None or span.closed:
            return
        self.tracer.close(span, lc=self.clock.tick(), t=self._now())
        detail: Dict[str, Any] = {
            "span": span.span_id,
            "name": span.name,
            "dur_s": span.duration_s(),
        }
        grant = span.first_event("grant")
        if grant is not None:
            detail["wait_s"] = round(grant.t - span.open_t, 6)
        self.publish(NetEventKind.SPAN_CLOSE, detail)

    # ------------------------------------------------------------ lifecycle

    async def start_listening(self) -> int:
        """Bind the inbound socket; returns the (ephemeral) port."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._running = True
        detail: Dict[str, Any] = {"port": self.port}
        if self.epoch:
            detail["epoch"] = self.epoch
        self.publish(NetEventKind.NODE_START, detail)
        self._root_span = self._trace_open(ROOT_SPAN, attrs={"port": self.port})
        return self.port

    async def connect_peers(self, peers: Dict[Pid, Address]) -> None:
        """Start one persistent outbound link per neighbour.

        ``peers`` maps each neighbour to the address this node should dial
        — the neighbour's own port, or its chaos proxy.
        """
        for q in self.topology.neighbors(self.pid):
            if q not in peers:
                raise ValueError(f"no address for neighbour {q!r}")
            link = _PeerLink(peers[q])
            self._links[q] = link
            link.task = asyncio.create_task(self._maintain_link(q, link))
        self._tick_task = asyncio.create_task(self._tick_loop())

    async def stop(self) -> None:
        """Halt: cancel tasks, close every socket, publish NODE_STOP."""
        if not self._running:
            return
        self._running = False
        tasks = [self._tick_task] + [l.task for l in self._links.values()]
        for task in tasks:
            if task is not None:
                task.cancel()
        for task in tasks:
            if task is not None:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        for link in self._links.values():
            if link.writer is not None:
                link.writer.close()
                link.writer = None
        for conn in list(self._conns):
            conn.close()
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.tracer is not None:
            # An incarnation takes its open spans down with it — a crashed
            # node's intervals truncate cleanly instead of dangling.
            for span in self.tracer.open_spans():
                self._trace_close(span)
            self._root_span = None
            self._active_span = None
            self._hunger_span = None
        self.publish(NetEventKind.NODE_STOP)

    # ------------------------------------------------------------- outbound

    async def _maintain_link(self, q: Pid, link: _PeerLink) -> None:
        """Keep the outbound connection to ``q`` alive; reconnect on loss."""
        backoff = 0.05
        host, port = link.address
        while self._running:
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                link.retries += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)
                continue
            opened_at = asyncio.get_running_loop().time()
            writer.write(encode_hello(repr(self.pid)))
            link.writer = writer
            self.publish(NetEventKind.CONN_OPEN, {"peer": repr(q)})
            try:
                # The outbound side is write-only; reading detects EOF.
                while await reader.read(4096):
                    pass
            except (ConnectionError, OSError):
                pass
            finally:
                link.writer = None
                writer.close()
                if self._running:
                    self.publish(NetEventKind.CONN_LOST, {"peer": repr(q)})
            # A connection that died at birth means the far side is down
            # (the chaos proxy accepts, then fails to reach a dead node):
            # back off instead of re-dialling in a tight storm.
            if asyncio.get_running_loop().time() - opened_at >= 1.0:
                backoff = 0.05
            elif self._running:
                link.retries += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)

    def send_message(self, dst: Pid, payload: Tuple) -> bool:
        """Write one framed message toward ``dst``; False if the link is down."""
        link = self._links.get(dst)
        if link is None or link.writer is None or link.writer.is_closing():
            self.send_failures += 1
            return False
        link.seq += 1
        lc: Optional[int] = None
        span_id: Optional[str] = None
        if self.clock is not None:
            lc = self.clock.tick()
            if self.tracer is not None:
                current = self.tracer.current()
                span_id = None if current is None else current.span_id
        frame = encode_frame(
            T_MSG,
            {
                "src": self.pid,
                "dst": dst,
                "payload": list(payload),
                "seq": link.seq,
            },
            lc=lc,
            span=span_id,
        )
        try:
            link.writer.write(frame)
        except (ConnectionError, OSError):
            self.send_failures += 1
            return False
        self.msgs_out += 1
        if self.flight is not None:
            self.flight.note_frame(self._now(), "out", T_MSG, peer=repr(dst))
        payload_key = tuple(payload)
        retransmit = self._last_sent.get(dst) == payload_key
        self._last_sent[dst] = payload_key
        if retransmit:
            self.retransmits += 1
            peer = repr(dst)
            self.retransmits_by_peer[peer] = (
                self.retransmits_by_peer.get(peer, 0) + 1
            )
        if self.tracer is not None and lc is not None:
            # Same stamp as the frame: the span event IS the emission.  A
            # retransmit keeps its own event name so the timeline can
            # attribute the latency it closes (the matched-edge check only
            # pairs first sends, which is conservative, never wrong).
            self.tracer.event(
                self.tracer.current(),
                "retransmit" if retransmit else "send",
                lc=lc,
                t=self._now(),
                detail={"dst": repr(dst), "seq": link.seq},
            )
        self.publish(NetEventKind.SEND, {"dst": repr(dst)})
        return True

    # -------------------------------------------------------------- inbound

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One inbound stream: a peer link or a lock client (HELLO decides).

        Garbage may precede, interleave with, or replace valid frames; the
        decoder resynchronises and this loop only trusts validated frames.
        """
        decoder = Decoder()
        is_client = False
        reported_garbage = 0
        reported_resyncs = 0
        # Highest accepted per-source sequence number, scoped to THIS
        # connection: duplication/reordering only happen inside one proxied
        # stream, and a restarted peer (fresh counters) arrives on a fresh
        # connection — per-node tracking would drop its messages as stale.
        last_seen: Dict[Pid, int] = {}
        self._conns.add(writer)
        try:
            while self._running:
                data = await reader.read(4096)
                if not data:
                    break
                frames = decoder.feed(data)
                if decoder.garbage_bytes > reported_garbage:
                    fresh = decoder.garbage_bytes - reported_garbage
                    self.garbage_bytes += fresh
                    self.resyncs += decoder.resyncs - reported_resyncs
                    reported_garbage = decoder.garbage_bytes
                    reported_resyncs = decoder.resyncs
                    self.publish(NetEventKind.GARBAGE, {"bytes": fresh})
                for frame in frames:
                    if self.flight is not None and not frame.is_hello:
                        self.flight.note_frame(self._now(), "in", frame.type)
                    if frame.is_hello:
                        fields = hello_fields(frame)
                        if fields is None or fields[0] != WIRE_VERSION:
                            self.publish(
                                NetEventKind.HELLO_BAD,
                                {"got": None if fields is None else fields[0]},
                            )
                            return  # incompatible peer: drop the connection
                        is_client = fields[2] == "client"
                        self.publish(
                            NetEventKind.HELLO_OK,
                            {"from": fields[1], "role": fields[2]},
                        )
                    elif frame.type == T_REQ and is_client:
                        self._handle_request(frame, writer)
                    elif frame.type == T_MSG:
                        self._handle_peer_message(frame, last_seen)
                    else:
                        self.junk_frames += 1
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(writer)
            abandoned = [s for (w, _, s, _) in self._waiters if w is writer]
            self._waiters = [
                entry for entry in self._waiters if entry[0] is not writer
            ]
            for span in abandoned:
                self._trace_event(span, "abandon")
                self._trace_close(span)
            if self._holder is writer:
                self._holder = None
                if isinstance(self.process, LockDinerProcess):
                    self.process.release()
            writer.close()

    def _handle_peer_message(
        self, frame: Frame, last_seen: Dict[Pid, int]
    ) -> None:
        message = decode_message(frame)
        body = frame.body if isinstance(frame.body, dict) else {}
        if message is None or message.dst != self.pid:
            self.junk_frames += 1
            return
        src = message.src
        if src not in self.topology.neighbors(self.pid):
            self.junk_frames += 1
            return
        seq = body.get("seq")
        if isinstance(seq, int):
            if seq <= last_seen.get(src, 0):
                self.stale_frames += 1  # duplicate or reordered-behind
                return
            last_seen[src] = seq
        self.msgs_in += 1
        # Fresh traffic from a neighbour resets its retransmit watch: the
        # next identical re-send is new protocol state, not a repair echo.
        self._last_sent.pop(src, None)
        if self.clock is not None:
            lc = (
                self.clock.merge(frame.lc)
                if frame.lc is not None
                else self.clock.tick()
            )
            if self.tracer is not None:
                detail: Dict[str, Any] = {"src": repr(src)}
                if isinstance(seq, int):
                    detail["seq"] = seq
                if frame.span:
                    detail["span"] = frame.span
                self.tracer.event(
                    self.tracer.current(), "recv", lc=lc, t=self._now(),
                    detail=detail,
                )
        self.publish(NetEventKind.RECV, {"src": repr(src)})
        self.process.on_message(self._ctx, src, message.payload)
        self._after_step()

    # ---------------------------------------------------------- lock service

    def _handle_request(self, frame: Frame, writer: asyncio.StreamWriter) -> None:
        body = frame.body if isinstance(frame.body, dict) else {}
        op = body.get("op")
        req_id = tuplify(body.get("id"))
        binary = frame.version == WIRE_BINARY_VERSION
        process = self.process
        if op == "acquire" and isinstance(process, LockDinerProcess):
            process.demand += 1
            attrs: Dict[str, Any] = {"req": repr(req_id)}
            client_span = body.get("span")
            if isinstance(client_span, str) and client_span:
                attrs["client_span"] = client_span
            span = self._trace_open(
                "acquire",
                parent=None if self._root_span is None
                else self._root_span.span_id,
                attrs=attrs,
            )
            self._waiters.append((writer, req_id, span, binary))
        elif op == "release" and isinstance(process, LockDinerProcess):
            process.release()
            self._holder = None
            self._respond(
                writer,
                {"op": "release", "id": req_id, "ok": True},
                binary=binary,
            )
        else:
            self._respond(
                writer,
                {"op": op, "id": req_id, "ok": False, "error": "bad-op"},
                binary=binary,
            )

    def _respond(
        self, writer: asyncio.StreamWriter, body: dict, *, binary: bool = False
    ) -> None:
        from .codec import T_RSP

        if writer.is_closing():
            return
        if binary:
            # Answer a binary-speaking client in kind; a body the packed
            # layout cannot carry falls back to the JSON frame, which every
            # decoder accepts anyway.
            try:
                frame = encode_response(
                    str(body.get("op")),
                    body.get("id"),
                    bool(body.get("ok")),
                    error=body.get("error"),
                )
            except CodecError:
                frame = None
            if frame is not None:
                try:
                    writer.write(frame)
                except (ConnectionError, OSError):
                    pass
                return
        try:
            writer.write(encode_frame(T_RSP, body))
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------- stepping

    async def _tick_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self.tick_interval)
            self.ticks += 1
            self.process.on_tick(self._ctx)
            self._after_step()

    def _after_step(self) -> None:
        """Detect eating-state transitions; emit GRANT/RELEASE and answer
        waiting clients.  Works for any process exposing ``state``."""
        state = getattr(self.process, "state", None)
        if state is None:
            return
        prev = self._prev_state
        self._prev_state = state
        if prev == state:
            return
        if state == HUNGRY and prev != EATING:
            # Plain-diner mode only: lock-service hunger is an acquire span
            # opened at the request, so a live waiter already covers it.
            if (self.tracer is not None and not self._waiters
                    and self._hunger_span is None
                    and not isinstance(self.process, LockDinerProcess)):
                self._hunger_span = self._trace_open("hunger")
        if state == EATING:
            self.grants += 1
            detail: Dict[str, Any] = {}
            granted_span: Optional[Span] = None
            if self._waiters and isinstance(self.process, LockDinerProcess):
                writer, req_id, granted_span, binary = self._waiters.pop(0)
                self.process.grant_taken()
                self._holder = writer
                self._respond(
                    writer,
                    {"op": "acquire", "id": req_id, "ok": True},
                    binary=binary,
                )
                detail["req"] = req_id
            if granted_span is None:
                granted_span = self._hunger_span
            if granted_span is None and self.tracer is not None:
                # No request and no hungry interval on record (byzantine
                # self-grants land here): the lifecycle starts at the grant.
                granted_span = self._trace_open("hunger")
            self._hunger_span = None
            if granted_span is not None:
                detail["span"] = granted_span.span_id
                self._trace_event(granted_span, "grant")
                self._active_span = granted_span
            self.publish(NetEventKind.GRANT, detail)
        elif prev == EATING:
            self.releases += 1
            self.publish(NetEventKind.RELEASE)
            if self._active_span is not None:
                self._trace_event(self._active_span, "release")
                self._trace_close(self._active_span)
                self._active_span = None

    # -------------------------------------------------------------- metrics

    def counters(self) -> Dict[str, int]:
        """Everything the supervisor turns into per-node metrics."""
        return {
            "msgs_in": self.msgs_in,
            "msgs_out": self.msgs_out,
            "send_failures": self.send_failures,
            "junk_frames": self.junk_frames,
            "stale_frames": self.stale_frames,
            "garbage_bytes": self.garbage_bytes,
            "resyncs": self.resyncs,
            "ticks": self.ticks,
            "grants": self.grants,
            "releases": self.releases,
            "retransmits": self.retransmits,
            "eats": getattr(self.process, "eats", 0),
            "epoch": self.epoch,
        }
