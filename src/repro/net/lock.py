"""The lock-service client API and the soak harness.

:class:`LockClient` is what an application sees: connect to any node of a
live cluster and ``acquire()``/``release()`` its resource.  Underneath,
an acquire makes the node's philosopher hungry and resolves when it
starts eating — so the paper's guarantees (no neighbouring eaters;
malicious crashes disturb at most radius 2 in the §3 program, and only
the faulty edge-set under Chandy–Misra) become service-level guarantees:
two clients of *neighbouring* nodes never hold their locks at once.

``soak`` drives one client per node against a chaos-injected cluster and
then audits the **emitted event stream**, not in-process state: grant and
release events (state transitions observed at each node) are folded into
hold intervals, and every topology edge is checked for overlap.  Nodes the
schedule crashed maliciously are excluded from the safety audit — the
paper's specification says nothing about what a faulty process itself
does, only about its healthy neighbourhood.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.topology import Topology
from .codec import Decoder, T_REQ, T_RSP, encode_frame, encode_hello
from .cluster import ClusterConfig, ClusterResult, ClusterSupervisor


class LockError(RuntimeError):
    """The client lost its node or got a refusal."""


class LockClient:
    """A TCP client of one node's lock service."""

    def __init__(self, host: str, port: int, *, client_id: str = "client") -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[Tuple[str, Any], asyncio.Future] = {}
        self._next_id = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._writer.write(encode_hello(self.client_id, role="client"))
        self._read_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        decoder = Decoder()
        try:
            while True:
                data = await self._reader.read(4096)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if frame.type != T_RSP or not isinstance(frame.body, dict):
                        continue
                    key = (str(frame.body.get("op")), frame.body.get("id"))
                    future = self._pending.pop(key, None)
                    if future is not None and not future.done():
                        future.set_result(frame.body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(LockError("connection lost"))
            self._pending.clear()

    def _request(self, op: str, req_id: Any) -> asyncio.Future:
        if self._writer is None or self._writer.is_closing():
            raise LockError("not connected")
        future = asyncio.get_running_loop().create_future()
        self._pending[(op, req_id)] = future
        self._writer.write(encode_frame(T_REQ, {"op": op, "id": req_id}))
        return future

    async def acquire(self, *, timeout: Optional[float] = None) -> Any:
        """Block until this node's philosopher eats on our behalf.

        Returns the request id (pass it to :meth:`release`).  Raises
        ``asyncio.TimeoutError`` if the node cannot be granted in time —
        under chaos that is a legitimate outcome, not a bug.
        """
        self._next_id += 1
        req_id = self._next_id
        future = self._request("acquire", req_id)
        body = await asyncio.wait_for(future, timeout)
        if not body.get("ok"):
            raise LockError(f"acquire refused: {body!r}")
        return req_id

    async def release(self, req_id: Any, *, timeout: Optional[float] = 5.0) -> None:
        future = self._request("release", req_id)
        await asyncio.wait_for(future, timeout)

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()


# ------------------------------------------------------------------- safety


@dataclass(frozen=True)
class Violation:
    """Two neighbouring nodes held the lock at once."""

    node_a: str
    node_b: str
    overlap_start: float
    overlap_end: float


def hold_intervals(
    events: Sequence[Dict[str, Any]], *, end_t: float
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-node ``(grant_t, release_t)`` intervals from an event stream.

    A grant without a matching release (node crashed or run ended while
    eating) closes at ``end_t``.  Tolerates duplicate releases and events
    out of order within a node (sorts first) — the stream is honest data,
    not a trusted invariant.
    """
    by_node: Dict[str, List[Tuple[float, str]]] = {}
    for event in events:
        kind = event.get("event")
        node = event.get("node")
        if node is None or kind not in ("net-grant", "net-release"):
            continue
        by_node.setdefault(node, []).append((float(event.get("t", 0.0)), kind))
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for node, marks in by_node.items():
        marks.sort()
        spans: List[Tuple[float, float]] = []
        open_at: Optional[float] = None
        for t, kind in marks:
            if kind == "net-grant":
                if open_at is None:
                    open_at = t
            elif open_at is not None:
                spans.append((open_at, t))
                open_at = None
        if open_at is not None:
            spans.append((open_at, end_t))
        intervals[node] = spans
    return intervals


def neighbour_violations(
    topology: Topology,
    intervals: Dict[str, List[Tuple[float, float]]],
    *,
    exclude: Sequence[str] = (),
) -> List[Violation]:
    """Every overlap of hold intervals across a topology edge.

    ``exclude`` names (repr'd) nodes outside the audit — the maliciously
    crashed ones, whose own behaviour the specification does not bound.
    """
    excluded = set(exclude)
    violations: List[Violation] = []
    for e in topology.edges:
        p, q = tuple(e)
        a, b = repr(p), repr(q)
        if a in excluded or b in excluded:
            continue
        for start_a, end_a in intervals.get(a, ()):
            for start_b, end_b in intervals.get(b, ()):
                lo = max(start_a, start_b)
                hi = min(end_a, end_b)
                if lo < hi:
                    violations.append(Violation(a, b, lo, hi))
    violations.sort(key=lambda v: (v.overlap_start, v.node_a, v.node_b))
    return violations


# --------------------------------------------------------------------- soak


@dataclass
class ClientStats:
    """What one traffic loop observed."""

    node: str
    acquired: int = 0
    released: int = 0
    timeouts: int = 0
    errors: int = 0
    latencies_s: List[float] = field(default_factory=list)


@dataclass
class SoakResult:
    """A complete soak: the cluster run plus the audit."""

    cluster: ClusterResult
    clients: List[ClientStats]
    violations: List[Violation]
    intervals: Dict[str, List[Tuple[float, float]]]

    @property
    def safe(self) -> bool:
        return not self.violations

    @property
    def nodes_with_grants(self) -> int:
        return sum(
            1 for c in self.cluster.counters.values() if c.get("grants", 0) > 0
        )


async def _client_loop(
    client: LockClient,
    stats: ClientStats,
    *,
    stop_at: float,
    rng: random.Random,
    hold_s: float,
    acquire_timeout: float,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        await client.connect()
    except OSError:
        stats.errors += 1
        return
    while True:
        remaining = stop_at - loop.time()
        if remaining <= 0.05:
            break
        started = loop.time()
        try:
            req_id = await client.acquire(
                timeout=min(acquire_timeout, remaining)
            )
        except asyncio.TimeoutError:
            stats.timeouts += 1
            break  # starved (chaos can legitimately do this); stop asking
        except (LockError, OSError):
            stats.errors += 1
            break
        stats.acquired += 1
        stats.latencies_s.append(round(loop.time() - started, 6))
        await asyncio.sleep(rng.uniform(0.3, 1.0) * hold_s)
        try:
            await client.release(req_id)
            stats.released += 1
        except (asyncio.TimeoutError, LockError, OSError):
            stats.errors += 1
            break
        await asyncio.sleep(rng.uniform(0.2, 0.8) * hold_s)
    await client.close()


async def soak(
    config: ClusterConfig,
    duration_s: float,
    *,
    hold_s: float = 0.05,
    acquire_timeout: float = 5.0,
) -> SoakResult:
    """Run a lock-service cluster under chaos and audit the event stream."""
    if not config.lock_service:
        raise ValueError("soak requires a lock_service cluster config")
    supervisor = ClusterSupervisor(config)
    client_tasks: List[asyncio.Task] = []
    stats: List[ClientStats] = []
    try:
        await supervisor.start(duration_s)
        loop = asyncio.get_running_loop()
        stop_at = supervisor._t0 + duration_s
        for i, pid in enumerate(config.topology.nodes):
            node = supervisor.nodes[pid]
            stat = ClientStats(node=repr(pid))
            stats.append(stat)
            client = LockClient(
                config.host, node.port, client_id=f"client-{i}"
            )
            client_tasks.append(
                asyncio.create_task(
                    _client_loop(
                        client,
                        stat,
                        stop_at=stop_at,
                        rng=random.Random(config.seed * 1000 + i),
                        hold_s=hold_s,
                        acquire_timeout=acquire_timeout,
                    )
                )
            )
        await supervisor.run(duration_s)
    finally:
        for task in client_tasks:
            task.cancel()
        for task in client_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await supervisor.stop()
    result = supervisor.result(duration_s)
    intervals = hold_intervals(result.events, end_t=duration_s)
    violations = neighbour_violations(
        config.topology, intervals, exclude=result.killed
    )
    return SoakResult(
        cluster=result,
        clients=stats,
        violations=violations,
        intervals=intervals,
    )
