"""The lock-service client API and the soak harness.

:class:`LockClient` is what an application sees: connect to any node of a
live cluster and ``acquire()``/``release()`` its resource.  Underneath,
an acquire makes the node's philosopher hungry and resolves when it
starts eating — so the paper's guarantees (no neighbouring eaters;
malicious crashes disturb at most radius 2 in the §3 program, and only
the faulty edge-set under Chandy–Misra) become service-level guarantees:
two clients of *neighbouring* nodes never hold their locks at once.

``soak`` drives one client per node against a chaos-injected cluster and
then audits the **emitted event stream**, not in-process state: grant and
release events (state transitions observed at each node) are folded into
hold intervals, and every topology edge is checked for overlap.  Nodes the
schedule crashed maliciously are excluded from the safety audit — the
paper's specification says nothing about what a faulty process itself
does, only about its healthy neighbourhood.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.events import NetEventKind
from ..obs.slo import SloReport
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceEvent
from .codec import (
    Decoder,
    Frame,
    T_REQ,
    T_RSP,
    encode_frame,
    encode_hello,
    encode_request,
)
from .cluster import ClusterConfig, ClusterResult, ClusterSupervisor

#: An acquire over a dead or silently partitioned link must fail, not
#: hang forever — the default is deliberately finite.
DEFAULT_ACQUIRE_TIMEOUT = 30.0


class LockError(RuntimeError):
    """The client lost its node or got a refusal."""


@dataclass
class _Pending:
    """One in-flight request: its future and when it was issued."""

    future: asyncio.Future
    at: float


class LockClient:
    """A reconnecting TCP client of one node's lock service.

    When the link drops (node crash, transport error, watchdog abort)
    every pending request fails fast with the real cause, and — with
    ``reconnect=True`` — a background task re-dials with exponential
    backoff plus jitter.  Request ids are prefixed with the connection
    *epoch* (bumped on every successful dial), so an id from a previous
    life can never collide with one from the current connection: a
    replayed ``acquire`` cannot double-grant.  A watchdog fails pending
    requests over a link that stalls *without* closing (a silent
    partition) instead of letting them hang, and a grant that arrives
    after its acquire gave up is released immediately so the node never
    holds a meal open on behalf of nobody.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "client",
        reconnect: bool = True,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
        stall_timeout_s: float = 5.0,
        bus=None,
        obs_pid: Optional[Pid] = None,
        t0: Optional[float] = None,
        rng: Optional[random.Random] = None,
        wire: str = "json",
    ) -> None:
        if wire not in ("json", "binary"):
            raise ValueError(f"unknown wire layout {wire!r}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.wire = wire
        self.reconnect = reconnect
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.stall_timeout_s = stall_timeout_s
        self._bus = bus
        self._obs_pid = obs_pid
        self._obs_seq = 0
        self._t0 = t0
        self._rng = rng if rng is not None else random.Random(client_id)
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._reconnect_task: Optional[asyncio.Task] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._pending: Dict[Tuple[str, Any], _Pending] = {}
        self._connected = asyncio.Event()
        self._next_id = 0
        self._last_rx = 0.0
        self._closed = False
        self.epoch = 0
        self.reconnects = 0
        self.orphan_grants = 0
        self.junk_frames = 0
        self.last_error: Optional[BaseException] = None

    # ----------------------------------------------------------- lifecycle

    async def connect(self) -> None:
        """Dial the node; raises ``OSError`` when it cannot be reached.

        The first connection is explicit so callers see immediate
        failure; with ``reconnect=True`` every later drop re-dials in the
        background.
        """
        await self._open()
        if self._watchdog_task is None:
            self._watchdog_task = asyncio.create_task(self._watchdog())

    async def _open(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        loop = asyncio.get_running_loop()
        self._writer = writer
        self.epoch += 1
        self._last_rx = loop.time()
        writer.write(encode_hello(self.client_id, role="client"))
        self._read_task = asyncio.create_task(self._read_loop(reader))
        self._connected.set()

    async def close(self) -> None:
        self._closed = True
        self._connected.clear()
        tasks = [
            t
            for t in (self._read_task, self._reconnect_task, self._watchdog_task)
            if t is not None
        ]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(LockError("client closed"))
        if self._writer is not None:
            self._writer.close()

    # ----------------------------------------------------------- transport

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        decoder = Decoder()
        cause: Optional[BaseException] = None
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    cause = ConnectionError("connection closed by peer")
                    break
                self._last_rx = asyncio.get_running_loop().time()
                for frame in decoder.feed(data):
                    self._handle_frame(frame)
        except (ConnectionError, OSError) as exc:
            cause = exc
        except asyncio.CancelledError:
            cause = ConnectionError("client closing")
            raise
        except Exception as exc:  # a poison frame must not kill us silently
            cause = exc
            self.last_error = exc
        finally:
            self._connected.clear()
            writer, self._writer = self._writer, None
            if writer is not None:
                writer.close()
            self._fail_pending(LockError(f"connection lost: {cause}"))
            if self.reconnect and not self._closed:
                self._reconnect_task = asyncio.create_task(
                    self._reconnect_loop(cause)
                )

    def _handle_frame(self, frame: Frame) -> None:
        if frame.type != T_RSP or not isinstance(frame.body, dict):
            self.junk_frames += 1
            return
        body = frame.body
        key = (str(body.get("op")), body.get("id"))
        entry = self._pending.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(body)
        elif body.get("op") == "acquire" and body.get("ok"):
            # A grant nobody is waiting for: our acquire timed out (or the
            # epoch turned over).  Hand it straight back, or the node
            # would hold the meal open forever on behalf of nobody.
            self.orphan_grants += 1
            self._send_frame("release", body.get("id"))

    async def _reconnect_loop(self, cause: Optional[BaseException]) -> None:
        backoff = self.backoff_s
        while not self._closed:
            # Full jitter keeps a fleet of clients from re-dialing in
            # lockstep after a node restart.
            await asyncio.sleep(backoff * (0.5 + self._rng.random()))
            try:
                await self._open()
            except OSError as exc:
                self.last_error = exc
                backoff = min(backoff * 2, self.max_backoff_s)
                continue
            self.reconnects += 1
            self._publish(
                NetEventKind.CLIENT_RECONNECT,
                {"epoch": self.epoch, "after": str(cause)},
            )
            return

    async def _watchdog(self) -> None:
        """Fail pending requests over a silently stalled link.

        A chaos partition can stop all traffic without closing the TCP
        connection; the read loop then never observes EOF and pending
        futures would hang forever.  When a request has waited
        ``stall_timeout_s`` with nothing at all received in that window,
        declare the link dead: fail the futures and abort the transport
        so the reconnect path takes over.
        """
        interval = max(0.05, self.stall_timeout_s / 4)
        while not self._closed:
            await asyncio.sleep(interval)
            if not self._pending:
                continue
            now = asyncio.get_running_loop().time()
            oldest = min(p.at for p in self._pending.values())
            if (
                now - oldest >= self.stall_timeout_s
                and now - self._last_rx >= self.stall_timeout_s
            ):
                self._fail_pending(LockError("connection stalled (watchdog)"))
                writer = self._writer
                if writer is not None:
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    else:
                        writer.close()

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            if not entry.future.done():
                entry.future.set_exception(exc)

    def _encode_request(self, op: str, req_id: Any) -> bytes:
        """The request frame in this client's wire layout.

        The binary layout only carries string ids (ours always are); an
        exotic id silently falls back to the JSON frame, which every node
        decodes regardless.
        """
        if self.wire == "binary" and isinstance(req_id, str):
            return encode_request(op, req_id)
        body: Dict[str, Any] = {"op": op, "id": req_id}
        if op == "acquire":
            body["span"] = str(req_id)
        return encode_frame(T_REQ, body)

    def _send_frame(self, op: str, req_id: Any) -> None:
        writer = self._writer
        if writer is None or writer.is_closing():
            return
        try:
            writer.write(self._encode_request(op, req_id))
        except (ConnectionError, OSError):
            pass

    def _publish(self, kind: NetEventKind, detail: Dict[str, Any]) -> None:
        if self._bus is None:
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        t = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        self._obs_seq += 1
        self._bus.publish(
            TraceEvent(self._obs_seq, kind, self._obs_pid, {"t": t, **detail})
        )

    # ------------------------------------------------------------ requests

    def _request(
        self, op: str, req_id: Any = None
    ) -> Tuple[Any, asyncio.Future]:
        writer = self._writer
        if writer is None or writer.is_closing():
            raise LockError("not connected")
        loop = asyncio.get_running_loop()
        allocate = req_id is None
        if allocate:
            req_id = f"{self.client_id}.{self.epoch}.{self._next_id + 1}"
        future = loop.create_future()
        self._pending[(op, req_id)] = _Pending(future, loop.time())
        # The acquire carries a client-side span id (the request id): the
        # node adopts it as the acquire span's ``client_span`` attribute,
        # chaining the causal trace across the process boundary.  Both
        # wire layouts carry it identically.
        try:
            writer.write(self._encode_request(op, req_id))
        except (ConnectionError, OSError) as exc:
            self._pending.pop((op, req_id), None)
            raise LockError(f"send failed: {exc}") from exc
        if allocate:
            # Burn the sequence number only once the request is on the
            # wire: a refused send must not leave an id gap that skews
            # grant/release audits across reconnects.
            self._next_id += 1
        return req_id, future

    async def acquire(
        self, *, timeout: Optional[float] = DEFAULT_ACQUIRE_TIMEOUT
    ) -> Any:
        """Block until this node's philosopher eats on our behalf.

        Returns the request id (pass it to :meth:`release`).  Raises
        ``asyncio.TimeoutError`` if the node cannot be granted in time —
        under chaos that is a legitimate outcome, not a bug — and
        :class:`LockError` when the connection is lost mid-request (the
        caller decides whether to retry; a silent retry here could
        double-acquire if the lost response was a grant).
        """
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                raise asyncio.TimeoutError("acquire timed out")
            if self.reconnect:
                await asyncio.wait_for(self._connected.wait(), remaining)
                remaining = None if deadline is None else deadline - loop.time()
            try:
                req_id, future = self._request("acquire")
            except LockError:
                if not self.reconnect or self._closed:
                    raise
                await asyncio.sleep(0.01)  # connection flapped; re-await it
                continue
            body = await asyncio.wait_for(future, remaining)
            if not body.get("ok"):
                raise LockError(f"acquire refused: {body!r}")
            return req_id

    async def release(self, req_id: Any, *, timeout: Optional[float] = 5.0) -> None:
        _, future = self._request("release", req_id)
        await asyncio.wait_for(future, timeout)


# ------------------------------------------------------------------- safety


@dataclass(frozen=True)
class Violation:
    """Two neighbouring nodes held the lock at once."""

    node_a: str
    node_b: str
    overlap_start: float
    overlap_end: float


def hold_intervals(
    events: Sequence[Dict[str, Any]], *, end_t: float
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-node ``(grant_t, release_t)`` intervals from an event stream.

    A grant without a matching release (node crashed or run ended while
    eating) closes at ``end_t``.  Tolerates duplicate releases and events
    out of order within a node (sorts first) — the stream is honest data,
    not a trusted invariant.
    """
    by_node: Dict[str, List[Tuple[float, str]]] = {}
    for event in events:
        kind = event.get("event")
        node = event.get("node")
        if node is None or kind not in ("net-grant", "net-release"):
            continue
        by_node.setdefault(node, []).append((float(event.get("t", 0.0)), kind))
    intervals: Dict[str, List[Tuple[float, float]]] = {}
    for node, marks in by_node.items():
        marks.sort()
        spans: List[Tuple[float, float]] = []
        open_at: Optional[float] = None
        for t, kind in marks:
            if kind == "net-grant":
                if open_at is None:
                    open_at = t
            elif open_at is not None:
                spans.append((open_at, t))
                open_at = None
        if open_at is not None:
            spans.append((open_at, end_t))
        intervals[node] = spans
    return intervals


def neighbour_violations(
    topology: Topology,
    intervals: Dict[str, List[Tuple[float, float]]],
    *,
    exclude: Sequence[str] = (),
) -> List[Violation]:
    """Every overlap of hold intervals across a topology edge.

    ``exclude`` names (repr'd) nodes outside the audit — the maliciously
    crashed ones, whose own behaviour the specification does not bound.
    """
    excluded = set(exclude)
    violations: List[Violation] = []
    for e in topology.edges:
        p, q = tuple(e)
        a, b = repr(p), repr(q)
        if a in excluded or b in excluded:
            continue
        for start_a, end_a in intervals.get(a, ()):
            for start_b, end_b in intervals.get(b, ()):
                lo = max(start_a, start_b)
                hi = min(end_a, end_b)
                if lo < hi:
                    violations.append(Violation(a, b, lo, hi))
    violations.sort(key=lambda v: (v.overlap_start, v.node_a, v.node_b))
    return violations


def attribute_violations(violations: Sequence[Violation]) -> List[str]:
    """Smallest (greedy) set of nodes whose exclusion clears every overlap.

    The fault-attribution step of the Byzantine-boundary demonstration:
    forged forks exist only on the faulty node's own incident edges, so
    every violation pair it causes includes it — the node appearing in the
    most violations is the culprit, and removing it (repeatedly, if several
    nodes misbehave) empties the list.  Ties break alphabetically so the
    audit is deterministic.
    """
    remaining = list(violations)
    blamed: List[str] = []
    while remaining:
        counts: Dict[str, int] = {}
        for v in remaining:
            counts[v.node_a] = counts.get(v.node_a, 0) + 1
            counts[v.node_b] = counts.get(v.node_b, 0) + 1
        worst = max(sorted(counts), key=lambda n: counts[n])
        blamed.append(worst)
        remaining = [
            v for v in remaining if worst not in (v.node_a, v.node_b)
        ]
    return blamed


# --------------------------------------------------------------------- soak


@dataclass
class ClientStats:
    """What one traffic loop observed."""

    node: str
    acquired: int = 0
    released: int = 0
    timeouts: int = 0
    errors: int = 0
    reconnects: int = 0
    latencies_s: List[float] = field(default_factory=list)


@dataclass
class SoakResult:
    """A complete soak: the cluster run plus the audit."""

    cluster: ClusterResult
    clients: List[ClientStats]
    violations: List[Violation]
    intervals: Dict[str, List[Tuple[float, float]]]
    #: Nodes subverted into Byzantine mode during the run (repr'd).  They
    #: stay *inside* the audit — their violations are the demonstration —
    #: and :attr:`blamed` should recover exactly this set from the
    #: violation pairs alone.
    byzantine: List[str] = field(default_factory=list)
    #: Final SLO evaluation (``cluster soak --slo`` only), reconciled with
    #: this audit's violation set.
    slo_report: Optional["SloReport"] = None

    @property
    def safe(self) -> bool:
        return not self.violations

    @property
    def blamed(self) -> List[str]:
        """Fault attribution: see :func:`attribute_violations`."""
        return attribute_violations(self.violations)

    @property
    def nodes_with_grants(self) -> int:
        return sum(
            1 for c in self.cluster.counters.values() if c.get("grants", 0) > 0
        )


async def _client_loop(
    client: LockClient,
    stats: ClientStats,
    *,
    stop_at: float,
    rng: random.Random,
    hold_s: float,
    acquire_timeout: float,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        await client.connect()
    except OSError:
        stats.errors += 1
        return
    try:
        while True:
            remaining = stop_at - loop.time()
            if remaining <= 0.05:
                break
            started = loop.time()
            try:
                req_id = await client.acquire(
                    timeout=min(acquire_timeout, remaining)
                )
            except asyncio.TimeoutError:
                stats.timeouts += 1
                continue  # starved for now (chaos can do this); keep asking
            except (LockError, OSError):
                # The node may be down pending a restart — stay in the loop
                # so a relaunched node sees fresh demand and can re-grant.
                stats.errors += 1
                await asyncio.sleep(min(0.1, max(0.0, stop_at - loop.time())))
                continue
            stats.acquired += 1
            stats.latencies_s.append(round(loop.time() - started, 6))
            await asyncio.sleep(rng.uniform(0.3, 1.0) * hold_s)
            try:
                await client.release(req_id)
                stats.released += 1
            except (asyncio.TimeoutError, LockError, OSError):
                stats.errors += 1
                continue
            await asyncio.sleep(rng.uniform(0.2, 0.8) * hold_s)
    finally:
        stats.reconnects = client.reconnects
        await client.close()


async def soak(
    config: ClusterConfig,
    duration_s: float,
    *,
    hold_s: float = 0.05,
    acquire_timeout: float = 5.0,
) -> SoakResult:
    """Run a lock-service cluster under chaos and audit the event stream."""
    if not config.lock_service:
        raise ValueError("soak requires a lock_service cluster config")
    supervisor = ClusterSupervisor(config)
    client_tasks: List[asyncio.Task] = []
    stats: List[ClientStats] = []
    try:
        await supervisor.start(duration_s)
        loop = asyncio.get_running_loop()
        stop_at = supervisor._t0 + duration_s
        for i, pid in enumerate(config.topology.nodes):
            node = supervisor.nodes[pid]
            stat = ClientStats(node=repr(pid))
            stats.append(stat)
            client = LockClient(
                config.host,
                node.port,
                client_id=f"client-{i}",
                stall_timeout_s=acquire_timeout,
                max_backoff_s=0.5,
                bus=supervisor.bus,
                obs_pid=pid,
                t0=supervisor._t0,
                rng=random.Random(config.seed * 7919 + i),
            )
            client_tasks.append(
                asyncio.create_task(
                    _client_loop(
                        client,
                        stat,
                        stop_at=stop_at,
                        rng=random.Random(config.seed * 1000 + i),
                        hold_s=hold_s,
                        acquire_timeout=acquire_timeout,
                    )
                )
            )
        await supervisor.run(duration_s)
    except asyncio.CancelledError:
        # SIGTERM mid-soak: tear down in order and audit the partial window.
        supervisor.interrupted = True
    finally:
        for task in client_tasks:
            task.cancel()
        for task in client_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await supervisor.stop()
    result = supervisor.result(duration_s)
    intervals = hold_intervals(result.events, end_t=duration_s)
    violations = neighbour_violations(
        config.topology, intervals, exclude=result.killed
    )
    slo_report = None
    if supervisor.slo_eval is not None:
        # The interval audit is authoritative for safety: adopt any overlap
        # the live grant-order check missed before the final verdict.
        supervisor.slo_eval.reconcile_safety(
            [v.overlap_start for v in violations]
        )
        slo_report = supervisor.slo_eval.report()
        result.slo_exhausted = slo_report.exhausted
    if violations:
        # Neighbour exclusion was broken: freeze the black boxes so the
        # postmortem survives even if artefact writes never happen.
        supervisor.dump_flights("soak-violation")
        result.flight_paths = list(supervisor.flight_paths)
    return SoakResult(
        cluster=result,
        clients=stats,
        violations=violations,
        intervals=intervals,
        byzantine=list(result.byzantine),
        slo_report=slo_report,
    )
