"""The cluster supervisor: N live nodes + chaos proxies on localhost.

``ClusterSupervisor`` owns the whole runtime of one run:

* one :class:`~repro.net.node.NodeServer` per topology node (same event
  loop, real TCP sockets on 127.0.0.1, ephemeral ports);
* one :class:`~repro.net.chaos.LinkProxy` per *directed* edge — every
  peer byte crosses a chaos-capable forwarder, so the fault schedule acts
  at the socket level exactly where a real network would;
* a :class:`~repro.net.chaos.ChaosController` playing the seeded
  schedule, including malicious crashes (garbage burst on the victim's
  outgoing links, then the supervisor halts the node);
* a liveness monitor publishing ``CRASH_DETECT`` when a node dies;
* one shared :class:`~repro.obs.bus.EventBus`; everything the nodes and
  the chaos layer publish is collected into an ordered event log and
  reduced to a :class:`~repro.obs.metrics.MetricsRegistry`, then written
  as the standard JSONL artefacts ``repro stats`` can sniff.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

from ..mp.diners_mp import DinersMpProcess
from ..obs.bus import EventBus
from ..obs.events import NetEventKind
from ..obs.flight import DEFAULT_CAPACITY, FlightRecorder, dump_flight
from ..obs.metrics import MetricsRegistry, percentile_of_sorted, write_metrics
from ..obs.prom import PROM_CONTENT_TYPE, Sample, render_prometheus
from ..obs.slo import LiveSloEvaluator, SloSpec
from ..obs.tracing import LamportClock, SpanRecorder, write_spans
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceEvent
from .chaos import ChaosController, ChaosSchedule, LinkProxy, build_schedule
from .node import LockDinerProcess, NodeServer

EVENTS_FORMAT_VERSION = 1
#: ``source`` values of the cluster event-log artefact family.
EVENT_SOURCES = ("cluster-events", "soak-events")


@dataclass(frozen=True)
class RestartPolicy:
    """How the supervisor relaunches a maliciously crashed node.

    ``arbitrary_state=True`` boots the replacement with randomized local
    protocol state drawn from a seeded RNG — the paper's §3 stabilization
    theorem says the system must converge from *any* state, so recovery
    need not (and, as a test of the claim, deliberately does not) restore
    a checkpoint.  Session state (client demand, held leases) is empty at
    boot regardless: it died with the old server's connections.
    """

    max_restarts: int = 1  #: relaunches allowed per node
    delay_s: float = 0.5  #: downtime between halt and relaunch
    arbitrary_state: bool = True  #: randomize the replacement's state


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one live-cluster run."""

    topology: Topology
    topology_spec: str
    seed: int = 0
    tick_interval: float = 0.01
    #: ``True`` hosts :class:`LockDinerProcess` (client-driven demand);
    #: ``False`` hosts always-hungry :class:`DinersMpProcess`.
    lock_service: bool = False
    chaos: bool = True
    partitions: int = 1
    malicious_crashes: int = 1
    host: str = "127.0.0.1"
    #: ``None`` leaves crashed nodes down for the rest of the run.
    restart: Optional[RestartPolicy] = None
    #: Play this exact fault plan instead of deriving one from ``seed`` —
    #: the corpus-replay path (``repro cluster soak --schedule-file``).
    #: Overrides ``chaos``/``partitions``/``malicious_crashes``.
    schedule: Optional[ChaosSchedule] = None
    #: Nodes suffering the *beyond-finite* fault: at "crash" time they are
    #: subverted to keep emitting protocol-shaped frames instead of
    #: halting.  Expected to violate neighbour exclusion at the subverted
    #: node — the paper's boundary, demonstrated.
    byzantine: int = 0
    #: Drive chaos through the adaptive adversary
    #: (:class:`repro.adversary.feedback.FeedbackChaosController`): the
    #: controller watches the obs stream and aims partitions/replays at
    #: the most vulnerable node on this cadence.
    adaptive: bool = False
    adaptive_interval: float = 0.4
    #: Write per-node span artefacts (``spans-<node>.jsonl``) here at
    #: teardown; also enables causal tracing on every node server.
    trace_dir: Optional[str] = None
    #: Serve the live Prometheus ``/metrics`` endpoint on this port while
    #: the cluster runs (0 = ephemeral); tracing is enabled too, since the
    #: hunger-latency metrics are derived from span closes.
    metrics_port: Optional[int] = None
    #: Stream every collected event to this JSONL file as it happens, one
    #: flushed line each — a SIGKILL mid-soak loses at most the last line,
    #: not the whole artefact (the final atomic write replaces the file).
    stream_events: Optional[str] = None
    #: Arm a per-node flight recorder and dump ``flight-<node>.jsonl``
    #: black boxes here on a violation, crash, watchdog stall, or SIGTERM.
    flight_dir: Optional[str] = None
    flight_capacity: int = DEFAULT_CAPACITY
    #: Evaluate this SLO spec live against the event stream; a newly
    #: exhausted budget annotates spans and triggers flight dumps.
    slo: Optional[SloSpec] = None

    @property
    def tracing(self) -> bool:
        # Flight dumps carry recent spans, so the recorder implies tracing.
        return (
            self.trace_dir is not None
            or self.metrics_port is not None
            or self.flight_dir is not None
        )


@dataclass
class ClusterResult:
    """What one run leaves behind (pre-artefact, in memory)."""

    topology_spec: str
    seed: int
    duration_s: float
    mode: str  #: ``run`` or ``soak``
    nodes: List[str] = field(default_factory=list)
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    schedule: Optional[Dict[str, Any]] = None
    killed: List[str] = field(default_factory=list)
    byzantine: List[str] = field(default_factory=list)
    chunk_faults: Dict[str, int] = field(default_factory=dict)
    restarts: Dict[str, int] = field(default_factory=dict)
    #: Seconds from a node's relaunch to its first client-matched grant —
    #: the run's observed convergence deadline, per restarted node.
    convergence_s: Dict[str, float] = field(default_factory=dict)
    #: Per-node span artefacts written at teardown (tracing runs only).
    trace_paths: List[str] = field(default_factory=list)
    #: Flight-recorder dumps triggered during (or just after) the run.
    flight_paths: List[str] = field(default_factory=list)
    #: SLO objectives whose budget the live evaluator saw exhausted.
    slo_exhausted: List[str] = field(default_factory=list)
    #: ``True`` when the run was cut short (SIGTERM/SIGINT) — the result
    #: and artefacts cover the partial window.
    interrupted: bool = False

    @property
    def total_grants(self) -> int:
        return sum(c.get("grants", 0) for c in self.counters.values())

    @property
    def total_garbage_bytes(self) -> int:
        return sum(c.get("garbage_bytes", 0) for c in self.counters.values())


class ClusterSupervisor:
    """Builds, runs, faults, observes, and tears down one live cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.bus = EventBus()
        self.events: List[Dict[str, Any]] = []
        self.bus.subscribe_all(self._collect)
        self.nodes: Dict[Pid, NodeServer] = {}
        self.proxies: Dict[tuple, LinkProxy] = {}
        self.schedule: Optional[ChaosSchedule] = None
        self.controller: Optional[ChaosController] = None
        self.killed: List[Pid] = []
        self.byzantine: List[Pid] = []
        self.chunk_faults: Dict[str, int] = {}
        self.restarts: Dict[Pid, int] = {}
        self.convergence_s: Dict[str, float] = {}
        #: repr(pid) -> relaunch time, cleared at the first post-restart
        #: client-matched grant (the convergence signal).
        self._awaiting_convergence: Dict[str, float] = {}
        #: Counters of retired (pre-restart) server incarnations.
        self._retired_counters: Dict[str, Dict[str, int]] = {}
        self._crash_reported: set = set()
        self._t0: Optional[float] = None
        self._chaos_task: Optional[asyncio.Task] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._stopped = False
        self.interrupted = False
        # ---- causal tracing: one recorder + clock per node, shared by
        # every incarnation (restarts extend the same span history).
        self.tracers: Dict[str, SpanRecorder] = {}
        self._clocks: Dict[str, LamportClock] = {}
        self.trace_paths: List[str] = []
        # ---- black boxes + live SLO judgment
        self.flights: Dict[str, FlightRecorder] = {}
        self.flight_paths: List[str] = []
        self._flight_reasons: set = set()
        self.slo_eval: Optional[LiveSloEvaluator] = (
            None if config.slo is None
            else LiveSloEvaluator(config.slo, config.topology)
        )
        # ---- live telemetry state (fed by _collect from the obs stream)
        self._hunger_waits: List[float] = []
        self._waiting: Dict[str, int] = {}  # node -> open waiting spans
        self._holding: set = set()
        self._retired_edge_rtx: Dict[tuple, int] = {}
        self._metrics_endpoint: Optional[MetricsEndpoint] = None
        self.metrics_port: Optional[int] = None
        self._stream_handle: Optional[TextIO] = None

    # ---------------------------------------------------------- collection

    def _collect(self, event: TraceEvent) -> None:
        detail = event.detail if isinstance(event.detail, dict) else {}
        kind = event.kind.value if hasattr(event.kind, "value") else str(event.kind)
        row: Dict[str, Any] = {
            "t": detail.get("t", 0.0),
            "node": None if event.pid is None else repr(event.pid),
            "event": kind,
        }
        extra = {k: v for k, v in detail.items() if k != "t"}
        if extra:
            row["detail"] = extra
        self.events.append(row)
        if self._stream_handle is not None:
            try:
                self._stream_handle.write(
                    json.dumps({"kind": "event", **row},
                               sort_keys=True, separators=(",", ":")) + "\n"
                )
                self._stream_handle.flush()
            except (OSError, ValueError):
                self._stream_handle = None  # disk gone; keep serving
        # Every node's black box sees its own happenings as they stream by.
        node = row["node"]
        if node is not None:
            flight = self.flights.get(node)
            if flight is not None:
                flight.note_event(row)
        # Live SLO judgment: the evaluator digests the same row; a newly
        # exhausted budget stamps the implicated spans and freezes every
        # black box while the incriminating history is still in the rings.
        if self.slo_eval is not None:
            for hit in self.slo_eval.on_event(row):
                self._on_slo_exhausted(hit, row["t"])
        # A client watchdog declaring a link silently stalled is a flight
        # trigger too — the stall's lead-up is exactly what the ring holds.
        if (
            kind == NetEventKind.CLIENT_RECONNECT.value
            and "watchdog" in str(extra.get("after", ""))
        ):
            self.dump_flights(f"stall:{node}")
        # Live-telemetry watches (span lifecycles -> hunger latency and the
        # waiting set the /metrics endpoint reports the chain length of).
        if node is not None:
            if kind == NetEventKind.SPAN_OPEN.value:
                if extra.get("name") in ("acquire", "hunger"):
                    self._waiting[node] = self._waiting.get(node, 0) + 1
            elif kind == NetEventKind.SPAN_CLOSE.value:
                if extra.get("name") in ("acquire", "hunger"):
                    left = self._waiting.get(node, 0) - 1
                    if left > 0:
                        self._waiting[node] = left
                    else:
                        self._waiting.pop(node, None)
                wait = extra.get("wait_s")
                if isinstance(wait, (int, float)):
                    self._hunger_waits.append(float(wait))
            elif kind == NetEventKind.GRANT.value:
                self._holding.add(node)
            elif kind == NetEventKind.RELEASE.value:
                self._holding.discard(node)
        # The adaptive adversary (when configured) reads the same stream
        # the artefacts record — no privileged state channel.
        observe = getattr(self.controller, "observe", None)
        if observe is not None:
            observe(row)
        # Convergence watch: a restarted node has re-stabilized (for the
        # service's purposes) at its first grant that answers a real client
        # acquire — corrupted-state "eats" carry no request id and do not
        # count.  Pop before emitting; _emit re-enters this collector.
        if (
            kind == NetEventKind.GRANT.value
            and row["node"] in self._awaiting_convergence
            and extra.get("req") is not None
        ):
            restarted_at = self._awaiting_convergence.pop(row["node"])
            elapsed = round(max(0.0, row["t"] - restarted_at), 6)
            self.convergence_s[row["node"]] = elapsed
            self._emit(
                NetEventKind.CONVERGENCE, event.pid, {"elapsed_s": elapsed}
            )

    def _emit(self, kind: NetEventKind, pid: Pid | None, detail: dict) -> None:
        loop = asyncio.get_running_loop()
        t = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        self.bus.publish(TraceEvent(len(self.events), kind, pid, {"t": t, **detail}))

    # ----------------------------------------------------------- lifecycle

    def _build_process(self, pid: Pid, index: int):
        cfg = self.config
        if cfg.lock_service:
            return LockDinerProcess(pid, cfg.topology, seed=cfg.seed + index)
        return DinersMpProcess(
            pid, cfg.topology, eat_ticks=2, seed=cfg.seed + index, repair=True
        )

    def _tracer_for(self, pid: Pid) -> Optional[SpanRecorder]:
        if not self.config.tracing:
            return None
        key = repr(pid)
        return self.tracers.setdefault(key, SpanRecorder(key))

    def _clock_for(self, pid: Pid) -> Optional[LamportClock]:
        if not self.config.tracing:
            return None
        key = repr(pid)
        return self._clocks.setdefault(key, LamportClock())

    def _flight_for(self, pid: Pid) -> Optional[FlightRecorder]:
        if self.config.flight_dir is None:
            return None
        key = repr(pid)
        return self.flights.setdefault(
            key, FlightRecorder(key, capacity=self.config.flight_capacity)
        )

    def _on_slo_exhausted(self, hit: Dict[str, Any], t: float) -> None:
        """An objective's budget just ran out: stamp the implicated nodes'
        current spans (the timeline walk-back lands on them) and freeze
        the black boxes."""
        objective = hit.get("objective", "?")
        for key in hit.get("nodes") or ():
            tracer = self.tracers.get(key)
            if tracer is None:
                continue
            clock = self._clocks.get(key)
            tracer.event(
                tracer.current(),
                "slo",
                lc=clock.tick() if clock is not None else 0,
                t=t,
                detail={"objective": objective},
            )
        self.dump_flights(f"slo:{objective}")

    def dump_flights(self, reason: str) -> List[str]:
        """Dump every armed ring to ``flight-<node>.jsonl``, once per
        distinct reason.  Works after :meth:`stop` too — the rings are
        plain memory, so a post-run audit can still freeze them."""
        if self.config.flight_dir is None or reason in self._flight_reasons:
            return []
        self._flight_reasons.add(reason)
        written: List[str] = []
        for key in sorted(self.flights):
            path = (
                Path(self.config.flight_dir)
                / f"flight-{sanitize_node(key)}.jsonl"
            )
            dump_flight(
                path,
                self.flights[key],
                reason=reason,
                tracer=self.tracers.get(key),
                header={
                    "topology": self.config.topology_spec,
                    "seed": self.config.seed,
                },
            )
            written.append(str(path))
            if str(path) not in self.flight_paths:
                self.flight_paths.append(str(path))
        return written

    def _open_stream(self, path_s: str) -> Optional[TextIO]:
        path = Path(path_s)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            handle = path.open("w", encoding="utf-8")
        except OSError:
            return None
        header = {
            "format": EVENTS_FORMAT_VERSION,
            "kind": "header",
            "source": "soak-events" if self.config.lock_service
            else "cluster-events",
            "topology": self.config.topology_spec,
            "seed": self.config.seed,
            "provisional": True,  # the post-run write replaces this file
        }
        handle.write(
            json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
        )
        handle.flush()
        return handle

    async def start(self, duration_s: float) -> None:
        """Bring every node and proxy up; wire the peer address maps."""
        cfg = self.config
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        if cfg.stream_events is not None:
            self._stream_handle = self._open_stream(cfg.stream_events)
        for i, pid in enumerate(cfg.topology.nodes):
            node = NodeServer(
                pid,
                cfg.topology,
                self._build_process(pid, i),
                host=cfg.host,
                tick_interval=cfg.tick_interval,
                bus=self.bus,
                t0=self._t0,
                tracer=self._tracer_for(pid),
                clock=self._clock_for(pid),
                flight=self._flight_for(pid),
            )
            self.nodes[pid] = node
            await node.start_listening()
        if cfg.metrics_port is not None:
            self._metrics_endpoint = MetricsEndpoint(
                self.live_samples, cfg.host, cfg.metrics_port
            )
            self.metrics_port = await self._metrics_endpoint.start()

        policy = cfg.restart
        if cfg.schedule is not None:
            self.schedule = cfg.schedule
        elif cfg.chaos:
            self.schedule = build_schedule(
                cfg.topology,
                seed=cfg.seed,
                duration_s=duration_s,
                partitions=cfg.partitions,
                malicious_crashes=cfg.malicious_crashes,
                restarts=0 if policy is None else policy.max_restarts,
                restart_delay_s=0.5 if policy is None else policy.delay_s,
                byzantine=cfg.byzantine,
            )
        else:
            self.schedule = ChaosSchedule(seed=cfg.seed, duration_s=duration_s)
        if cfg.adaptive:
            # Deferred import: repro.adversary.feedback imports net.chaos.
            from ..adversary.feedback import FeedbackChaosController

            self.controller = FeedbackChaosController(
                self.schedule,
                cfg.topology,
                seed=cfg.seed,
                interval_s=cfg.adaptive_interval,
                on_fault=self._on_scheduled_fault,
                on_crash=self._kill_node,
                on_restart=self._restart_node,
                on_byzantine=self._subvert_node,
                on_decision=self._on_adversary_decision,
            )
        else:
            self.controller = ChaosController(
                self.schedule,
                on_fault=self._on_scheduled_fault,
                on_crash=self._kill_node,
                on_restart=self._restart_node,
                on_byzantine=self._subvert_node,
            )

        for p in cfg.topology.nodes:
            for q in cfg.topology.neighbors(p):
                link = (p, q)
                proxy = LinkProxy(
                    link,
                    cfg.host,
                    self.nodes[q].port,
                    profile=self.schedule.profiles.get(link),
                    # A string seed keeps per-link decisions reproducible
                    # across processes (hash() is salted; this is not).
                    rng=random.Random(f"{cfg.seed}:{link!r}"),
                    on_fault=self._on_chunk_fault,
                )
                await proxy.start(cfg.host)
                self.proxies[link] = proxy
                self.controller.register(proxy)

        for p in cfg.topology.nodes:
            peers = {
                q: (cfg.host, self.proxies[(p, q)].port)
                for q in cfg.topology.neighbors(p)
            }
            await self.nodes[p].connect_peers(peers)
        self._monitor_task = asyncio.create_task(self._monitor())

    async def run(self, duration_s: float) -> None:
        """Play the chaos schedule while the cluster serves for the window."""
        assert self._t0 is not None, "start() must run first"
        self._chaos_task = asyncio.create_task(
            self.controller.run(self._t0)
        )
        loop = asyncio.get_running_loop()
        remaining = self._t0 + duration_s - loop.time()
        if remaining > 0:
            await asyncio.sleep(remaining)

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self.interrupted:
            # SIGTERM/SIGINT: the final artefacts may never be written, so
            # the black boxes are the postmortem.  Dump before teardown.
            self.dump_flights("sigterm")
        for task in (self._chaos_task, self._monitor_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        if self._metrics_endpoint is not None:
            await self._metrics_endpoint.close()
            self._metrics_endpoint = None
        for node in self.nodes.values():
            await node.stop()
        for proxy in self.proxies.values():
            await proxy.close()
        if self._stream_handle is not None:
            try:
                self._stream_handle.flush()
                os.fsync(self._stream_handle.fileno())
                self._stream_handle.close()
            except (OSError, ValueError):
                pass
            self._stream_handle = None
        if self.config.trace_dir is not None:
            for key in sorted(self.tracers):
                path = (
                    Path(self.config.trace_dir)
                    / f"spans-{sanitize_node(key)}.jsonl"
                )
                write_spans(
                    path,
                    self.tracers[key],
                    header={
                        "topology": self.config.topology_spec,
                        "seed": self.config.seed,
                    },
                )
                self.trace_paths.append(str(path))

    # --------------------------------------------------------------- chaos

    def _on_scheduled_fault(self, event) -> None:
        self._record_chaos_span(event)
        self._emit(
            NetEventKind.CHAOS,
            event.node,
            {"kind": event.kind, "links": len(event.links)},
        )

    def _record_chaos_span(self, event) -> None:
        """Stamp a chaos hit onto the victim's current span, so the offline
        timeline can attribute latency the fault induced."""
        if event.node is None:
            return
        key = repr(event.node)
        tracer = self.tracers.get(key)
        if tracer is None:
            return
        loop = asyncio.get_running_loop()
        t = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        tracer.event(
            tracer.current(),
            "chaos",
            lc=self._clocks[key].tick(),
            t=t,
            detail={"kind": event.kind},
        )

    def _on_chunk_fault(self, kind: str, link) -> None:
        self.chunk_faults[kind] = self.chunk_faults.get(kind, 0) + 1

    def _on_adversary_decision(self, event, reason: str) -> None:
        # The applied fault itself reaches _on_scheduled_fault (and the
        # victim's span) via on_fault; here we only log the decision.
        self._emit(
            NetEventKind.ADVERSARY,
            event.node,
            {"kind": event.kind, "reason": reason, "links": len(event.links)},
        )

    async def _kill_node(self, pid: Pid) -> None:
        """The halt half of a malicious crash: the node simply stops."""
        node = self.nodes.get(pid)
        if node is None:
            return
        self.killed.append(pid)
        await node.stop()

    async def _subvert_node(self, pid: Pid) -> None:
        """The beyond-finite fault: swap the node's process for a Byzantine
        double that claims the lock forever and forges fork frames.  The
        server keeps running — from outside, the node "crashed" but never
        went quiet."""
        node = self.nodes.get(pid)
        if node is None or not node._running:
            return
        from ..adversary.byzantine import subvert  # deferred: import cycle

        try:
            node.process = subvert(node.process)
        except TypeError:
            return  # not a diner process; nothing to subvert
        self.byzantine.append(pid)
        self._emit(NetEventKind.BYZANTINE, pid, {})

    async def _restart_node(self, pid: Pid) -> None:
        """Relaunch a halted node under the configured restart policy.

        The replacement listens on the *same* port (neighbour proxies dial
        it by address), hosts a fresh process — randomized to an arbitrary
        state when the policy says so — and re-dials its outgoing chaos
        proxies, which the controller revived just before calling here.
        """
        cfg = self.config
        policy = cfg.restart
        if policy is None or policy.max_restarts <= 0:
            return
        old = self.nodes.get(pid)
        if old is None or old._running:
            return
        if self.restarts.get(pid, 0) >= policy.max_restarts:
            return
        count = self.restarts.get(pid, 0) + 1
        index = list(cfg.topology.nodes).index(pid)
        process = self._build_process(pid, index)
        if policy.arbitrary_state:
            rng = random.Random(f"{cfg.seed}:restart:{pid!r}:{count}")
            corrupt = getattr(process, "corrupt", None)
            if corrupt is not None:
                corrupt(rng)
        self._retired_counters[repr(pid)] = merge_counters(
            self._retired_counters.get(repr(pid), {}), old.counters()
        )
        for peer, n in old.retransmits_by_peer.items():
            edge = (repr(pid), peer)
            self._retired_edge_rtx[edge] = self._retired_edge_rtx.get(edge, 0) + n
        node = NodeServer(
            pid,
            cfg.topology,
            process,
            host=cfg.host,
            port=old.port or 0,
            tick_interval=cfg.tick_interval,
            bus=self.bus,
            t0=self._t0,
            epoch=count,
            # Same recorder and clock as every previous incarnation: the
            # node's causal history is one line, epochs tell spans apart.
            tracer=self._tracer_for(pid),
            clock=self._clock_for(pid),
            flight=self._flight_for(pid),
        )
        for _ in range(20):
            try:
                await node.start_listening()
                break
            except OSError:
                await asyncio.sleep(0.05)  # old socket still in TIME_WAIT
        else:
            return  # port never came free; the node stays down
        self.nodes[pid] = node
        self.restarts[pid] = count
        self._crash_reported.discard(pid)
        peers = {
            q: (cfg.host, self.proxies[(pid, q)].port)
            for q in cfg.topology.neighbors(pid)
        }
        await node.connect_peers(peers)
        loop = asyncio.get_running_loop()
        restarted_at = round(loop.time() - self._t0, 6)
        self._awaiting_convergence[repr(pid)] = restarted_at
        self._emit(
            NetEventKind.NODE_RESTART,
            pid,
            {"epoch": count, "arbitrary": policy.arbitrary_state},
        )

    async def _monitor(self) -> None:
        """Liveness watchdog: report nodes whose tick loop died."""
        while True:
            await asyncio.sleep(0.2)
            for pid, node in self.nodes.items():
                task = node._tick_task
                dead = task is not None and task.done()
                if dead and pid not in self._crash_reported:
                    self._crash_reported.add(pid)
                    expected = pid in self.killed
                    self._emit(
                        NetEventKind.CRASH_DETECT,
                        pid,
                        {"expected": expected},
                    )
                    # Freeze the black boxes while the crash's lead-up is
                    # still in the rings (scheduled kills included — the
                    # point of a flight recorder is the moments *before*).
                    self.dump_flights(f"crash:{pid!r}")

    # ------------------------------------------------------------ telemetry

    def waiting_chain(self) -> List[str]:
        """Longest-waiting head extended greedily through waiting
        neighbours — the live approximation of the simulator's chain
        probe, over nodes with an open acquire/hunger span and no grant."""
        waiting = {
            n for n, count in self._waiting.items()
            if count > 0 and n not in self._holding
        }
        if not waiting:
            return []
        neighbors = {
            repr(p): [repr(q) for q in self.config.topology.neighbors(p)]
            for p in self.config.topology.nodes
        }
        chain = [min(waiting)]
        seen = set(chain)
        while True:
            frontier = [
                n for n in neighbors.get(chain[-1], ())
                if n in waiting and n not in seen
            ]
            if not frontier:
                return chain
            chain.append(min(frontier))
            seen.add(chain[-1])

    def live_samples(self) -> List[Sample]:
        """The /metrics sample set — everything ``repro top`` renders."""
        loop = asyncio.get_running_loop()
        uptime = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        samples: List[Sample] = [
            Sample("repro_cluster_uptime_seconds", uptime,
                   help="Seconds since the supervisor started"),
            Sample("repro_cluster_killed", float(len(self.killed)),
                   help="Nodes halted by malicious crashes"),
            Sample("repro_cluster_waiting_chain_length",
                   float(len(self.waiting_chain())),
                   help="Longest chain of hungry nodes waiting on each other"),
        ]
        if self._hunger_waits:
            ordered = sorted(self._hunger_waits)
            for q in (0.5, 0.9, 0.99):
                samples.append(
                    Sample("repro_cluster_hunger_latency_seconds",
                           round(percentile_of_sorted(ordered, q), 6),
                           labels={"q": str(q)},
                           help="Acquire-to-grant latency percentiles")
                )
        per_node = {
            repr(p): merge_counters(
                self._retired_counters.get(repr(p), {}), n.counters()
            )
            for p, n in self.nodes.items()
        }
        gauges = (
            ("repro_node_grants_total", "grants", "counter"),
            ("repro_node_msgs_in_total", "msgs_in", "counter"),
            ("repro_node_msgs_out_total", "msgs_out", "counter"),
            ("repro_node_retransmits_total", "retransmits", "counter"),
            ("repro_node_epoch", "epoch", "gauge"),
        )
        for pid, node in sorted(self.nodes.items(), key=lambda kv: repr(kv[0])):
            key = repr(pid)
            samples.append(
                Sample("repro_node_up", 1.0 if node._running else 0.0,
                       labels={"node": key},
                       help="1 while the node's server is running")
            )
            counters = per_node[key]
            for name, counter_key, kind in gauges:
                samples.append(
                    Sample(name, float(counters.get(counter_key, 0)),
                           labels={"node": key}, kind=kind)
                )
        edges: Dict[tuple, int] = dict(self._retired_edge_rtx)
        for pid, node in self.nodes.items():
            for peer, n in node.retransmits_by_peer.items():
                edge = (repr(pid), peer)
                edges[edge] = edges.get(edge, 0) + n
        for (src, dst), n in sorted(edges.items()):
            samples.append(
                Sample("repro_edge_retransmits_total", float(n),
                       labels={"node": src, "peer": dst}, kind="counter",
                       help="Identical re-sends per directed edge")
            )
        for node_key, elapsed in sorted(self.convergence_s.items()):
            samples.append(
                Sample("repro_cluster_convergence_seconds", elapsed,
                       labels={"node": node_key},
                       help="Restart to first client-matched grant")
            )
        if self.slo_eval is not None:
            samples.extend(self.slo_eval.samples())
        return samples

    # -------------------------------------------------------------- results

    def result(self, duration_s: float) -> ClusterResult:
        cfg = self.config
        counters = {
            repr(p): merge_counters(
                self._retired_counters.get(repr(p), {}), n.counters()
            )
            for p, n in self.nodes.items()
        }
        return ClusterResult(
            topology_spec=cfg.topology_spec,
            seed=cfg.seed,
            duration_s=duration_s,
            mode="soak" if cfg.lock_service else "run",
            nodes=[repr(p) for p in cfg.topology.nodes],
            counters=counters,
            events=sorted(self.events, key=lambda e: (e["t"], e["event"])),
            schedule=None if self.schedule is None else self.schedule.describe(),
            killed=[repr(p) for p in self.killed],
            byzantine=[repr(p) for p in self.byzantine],
            chunk_faults=dict(self.chunk_faults),
            restarts={repr(p): n for p, n in self.restarts.items()},
            convergence_s=dict(self.convergence_s),
            trace_paths=list(self.trace_paths),
            flight_paths=list(self.flight_paths),
            slo_exhausted=(
                [] if self.slo_eval is None else self.slo_eval.exhausted
            ),
            interrupted=self.interrupted,
        )


_NODE_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def sanitize_node(key: str) -> str:
    """A node key (``repr(pid)``) as a filesystem-safe artefact stem."""
    cleaned = _NODE_SAFE.sub("_", key).strip("_")
    return cleaned or "node"


class MetricsEndpoint:
    """A /metrics HTTP listener (Prometheus text format) over any sampler.

    Deliberately minimal: one GET per connection, rendered from the given
    zero-argument ``sample_fn`` at request time, connection closed.
    Enough for a scraper or ``repro top``; not a web server.  The cluster
    supervisor serves :meth:`ClusterSupervisor.live_samples` through one;
    the gateway serves its mux/batch gauges through another.
    """

    def __init__(self, sample_fn, host: str, port: int) -> None:
        self._sample_fn = sample_fn
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None
        self.port: Optional[int] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._serve, self._host, self._port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            ok = request.startswith(b"GET ")
            body = (
                render_prometheus(self._sample_fn())
                if ok else "method not allowed\n"
            ).encode("utf-8")
            status = b"200 OK" if ok else b"405 Method Not Allowed"
            writer.write(
                b"HTTP/1.1 " + status + b"\r\n"
                b"Content-Type: " + PROM_CONTENT_TYPE.encode("ascii") + b"\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def merge_counters(
    older: Dict[str, int], newer: Dict[str, int]
) -> Dict[str, int]:
    """Fold a retired server incarnation's counters into its successor's.

    Everything is additive except ``epoch``, which identifies the latest
    incarnation rather than accumulating.
    """
    merged = dict(older)
    for key, value in newer.items():
        if key == "epoch":
            merged[key] = max(merged.get(key, 0), value)
        else:
            merged[key] = merged.get(key, 0) + value
    return merged


async def run_cluster(
    config: ClusterConfig, duration_s: float
) -> ClusterResult:
    """One complete supervised run: start → serve → stop → result.

    Cancellation (SIGTERM/SIGINT routed through the CLI's interruptible
    runner) is an early, orderly shutdown: the partial result still comes
    back and the artefacts cover the truncated window.
    """
    supervisor = ClusterSupervisor(config)
    try:
        await supervisor.start(duration_s)
        await supervisor.run(duration_s)
    except asyncio.CancelledError:
        supervisor.interrupted = True
    finally:
        await supervisor.stop()
    return supervisor.result(duration_s)


# ---------------------------------------------------------------- artefacts


def cluster_metrics(result: ClusterResult) -> MetricsRegistry:
    """Reduce a run to the standard metrics instruments."""
    registry = MetricsRegistry()
    for node in sorted(result.counters):
        for key, value in sorted(result.counters[node].items()):
            counter = registry.counter(f"net/{node}/{key}")
            counter.inc(value)
    grants = registry.counter("cluster/grants")
    grants.inc(result.total_grants)
    registry.counter("cluster/garbage_bytes").inc(result.total_garbage_bytes)
    registry.gauge("cluster/nodes").set(len(result.nodes))
    registry.gauge("cluster/killed").set(len(result.killed))
    registry.gauge("cluster/byzantine").set(len(result.byzantine))
    registry.counter("cluster/restarts").inc(sum(result.restarts.values()))
    for node in sorted(result.convergence_s):
        registry.gauge(f"cluster/convergence_s/{node}").set(
            result.convergence_s[node]
        )
    for kind in sorted(result.chunk_faults):
        registry.counter(f"chaos/chunk_faults/{kind}").inc(
            result.chunk_faults[kind]
        )
    scheduled = registry.counter("chaos/scheduled_faults")
    if result.schedule:
        scheduled.inc(len(result.schedule.get("events", ())))
    events_by_kind: Dict[str, int] = {}
    for event in result.events:
        kind = event["event"]
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
    for kind in sorted(events_by_kind):
        registry.counter(f"cluster/events/{kind}").inc(events_by_kind[kind])
    return registry


def artefact_header(result: ClusterResult, source: str) -> Dict[str, Any]:
    """The shared header of both cluster artefact files."""
    from .. import version as repro_version  # deferred: package-init cycle

    return {
        "source": source,
        "topology": result.topology_spec,
        "seed": result.seed,
        "duration_s": result.duration_s,
        "nodes": len(result.nodes),
        "version": repro_version(),
    }


def write_cluster_metrics(
    path: Path | str, result: ClusterResult, *, extra_header: Dict[str, Any] | None = None
) -> Path:
    source = "cluster-soak" if result.mode == "soak" else "cluster-run"
    header = artefact_header(result, source)
    if extra_header:
        header.update(extra_header)
    return write_metrics(
        path, cluster_metrics(result), header=header, include_meta=True
    )


def read_cluster_events(
    path: Path | str,
) -> tuple[Dict[str, Any], List[Dict[str, Any]], int]:
    """Parse an event-log artefact leniently.

    Returns ``(header, events, skipped_lines)``.  Unparseable or foreign
    lines are counted, not fatal — a soak cut short by a crash leaves a
    truncated tail, and the summary should still come out.
    """
    header: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(row, dict):
                skipped += 1
            elif row.get("kind") == "header":
                header = row
            elif row.get("kind") == "event":
                events.append(row)
            else:
                skipped += 1
    return header, events, skipped


def write_cluster_events(path: Path | str, result: ClusterResult) -> Path:
    """The event-log artefact: header (with the fault schedule), then one
    line per observed event in time order."""
    source = "soak-events" if result.mode == "soak" else "cluster-events"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": EVENTS_FORMAT_VERSION,
        "kind": "header",
        **artefact_header(result, source),
        "schedule": result.schedule,
        "killed": result.killed,
        "byzantine": result.byzantine,
        "restarts": result.restarts,
        "convergence_s": result.convergence_s,
    }
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n")
        for event in result.events:
            handle.write(
                json.dumps(
                    {"kind": "event", **event},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path
