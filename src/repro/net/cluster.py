"""The cluster supervisor: N live nodes + chaos proxies on localhost.

``ClusterSupervisor`` owns the whole runtime of one run:

* one :class:`~repro.net.node.NodeServer` per topology node (same event
  loop, real TCP sockets on 127.0.0.1, ephemeral ports);
* one :class:`~repro.net.chaos.LinkProxy` per *directed* edge — every
  peer byte crosses a chaos-capable forwarder, so the fault schedule acts
  at the socket level exactly where a real network would;
* a :class:`~repro.net.chaos.ChaosController` playing the seeded
  schedule, including malicious crashes (garbage burst on the victim's
  outgoing links, then the supervisor halts the node);
* a liveness monitor publishing ``CRASH_DETECT`` when a node dies;
* one shared :class:`~repro.obs.bus.EventBus`; everything the nodes and
  the chaos layer publish is collected into an ordered event log and
  reduced to a :class:`~repro.obs.metrics.MetricsRegistry`, then written
  as the standard JSONL artefacts ``repro stats`` can sniff.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..mp.diners_mp import DinersMpProcess
from ..obs.bus import EventBus
from ..obs.events import NetEventKind
from ..obs.metrics import MetricsRegistry, write_metrics
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceEvent
from .chaos import ChaosController, ChaosSchedule, LinkProxy, build_schedule
from .node import LockDinerProcess, NodeServer

EVENTS_FORMAT_VERSION = 1
#: ``source`` values of the cluster event-log artefact family.
EVENT_SOURCES = ("cluster-events", "soak-events")


@dataclass(frozen=True)
class RestartPolicy:
    """How the supervisor relaunches a maliciously crashed node.

    ``arbitrary_state=True`` boots the replacement with randomized local
    protocol state drawn from a seeded RNG — the paper's §3 stabilization
    theorem says the system must converge from *any* state, so recovery
    need not (and, as a test of the claim, deliberately does not) restore
    a checkpoint.  Session state (client demand, held leases) is empty at
    boot regardless: it died with the old server's connections.
    """

    max_restarts: int = 1  #: relaunches allowed per node
    delay_s: float = 0.5  #: downtime between halt and relaunch
    arbitrary_state: bool = True  #: randomize the replacement's state


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one live-cluster run."""

    topology: Topology
    topology_spec: str
    seed: int = 0
    tick_interval: float = 0.01
    #: ``True`` hosts :class:`LockDinerProcess` (client-driven demand);
    #: ``False`` hosts always-hungry :class:`DinersMpProcess`.
    lock_service: bool = False
    chaos: bool = True
    partitions: int = 1
    malicious_crashes: int = 1
    host: str = "127.0.0.1"
    #: ``None`` leaves crashed nodes down for the rest of the run.
    restart: Optional[RestartPolicy] = None
    #: Play this exact fault plan instead of deriving one from ``seed`` —
    #: the corpus-replay path (``repro cluster soak --schedule-file``).
    #: Overrides ``chaos``/``partitions``/``malicious_crashes``.
    schedule: Optional[ChaosSchedule] = None
    #: Nodes suffering the *beyond-finite* fault: at "crash" time they are
    #: subverted to keep emitting protocol-shaped frames instead of
    #: halting.  Expected to violate neighbour exclusion at the subverted
    #: node — the paper's boundary, demonstrated.
    byzantine: int = 0
    #: Drive chaos through the adaptive adversary
    #: (:class:`repro.adversary.feedback.FeedbackChaosController`): the
    #: controller watches the obs stream and aims partitions/replays at
    #: the most vulnerable node on this cadence.
    adaptive: bool = False
    adaptive_interval: float = 0.4


@dataclass
class ClusterResult:
    """What one run leaves behind (pre-artefact, in memory)."""

    topology_spec: str
    seed: int
    duration_s: float
    mode: str  #: ``run`` or ``soak``
    nodes: List[str] = field(default_factory=list)
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    schedule: Optional[Dict[str, Any]] = None
    killed: List[str] = field(default_factory=list)
    byzantine: List[str] = field(default_factory=list)
    chunk_faults: Dict[str, int] = field(default_factory=dict)
    restarts: Dict[str, int] = field(default_factory=dict)
    #: Seconds from a node's relaunch to its first client-matched grant —
    #: the run's observed convergence deadline, per restarted node.
    convergence_s: Dict[str, float] = field(default_factory=dict)

    @property
    def total_grants(self) -> int:
        return sum(c.get("grants", 0) for c in self.counters.values())

    @property
    def total_garbage_bytes(self) -> int:
        return sum(c.get("garbage_bytes", 0) for c in self.counters.values())


class ClusterSupervisor:
    """Builds, runs, faults, observes, and tears down one live cluster."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.bus = EventBus()
        self.events: List[Dict[str, Any]] = []
        self.bus.subscribe_all(self._collect)
        self.nodes: Dict[Pid, NodeServer] = {}
        self.proxies: Dict[tuple, LinkProxy] = {}
        self.schedule: Optional[ChaosSchedule] = None
        self.controller: Optional[ChaosController] = None
        self.killed: List[Pid] = []
        self.byzantine: List[Pid] = []
        self.chunk_faults: Dict[str, int] = {}
        self.restarts: Dict[Pid, int] = {}
        self.convergence_s: Dict[str, float] = {}
        #: repr(pid) -> relaunch time, cleared at the first post-restart
        #: client-matched grant (the convergence signal).
        self._awaiting_convergence: Dict[str, float] = {}
        #: Counters of retired (pre-restart) server incarnations.
        self._retired_counters: Dict[str, Dict[str, int]] = {}
        self._crash_reported: set = set()
        self._t0: Optional[float] = None
        self._chaos_task: Optional[asyncio.Task] = None
        self._monitor_task: Optional[asyncio.Task] = None

    # ---------------------------------------------------------- collection

    def _collect(self, event: TraceEvent) -> None:
        detail = event.detail if isinstance(event.detail, dict) else {}
        kind = event.kind.value if hasattr(event.kind, "value") else str(event.kind)
        row: Dict[str, Any] = {
            "t": detail.get("t", 0.0),
            "node": None if event.pid is None else repr(event.pid),
            "event": kind,
        }
        extra = {k: v for k, v in detail.items() if k != "t"}
        if extra:
            row["detail"] = extra
        self.events.append(row)
        # The adaptive adversary (when configured) reads the same stream
        # the artefacts record — no privileged state channel.
        observe = getattr(self.controller, "observe", None)
        if observe is not None:
            observe(row)
        # Convergence watch: a restarted node has re-stabilized (for the
        # service's purposes) at its first grant that answers a real client
        # acquire — corrupted-state "eats" carry no request id and do not
        # count.  Pop before emitting; _emit re-enters this collector.
        if (
            kind == NetEventKind.GRANT.value
            and row["node"] in self._awaiting_convergence
            and extra.get("req") is not None
        ):
            restarted_at = self._awaiting_convergence.pop(row["node"])
            elapsed = round(max(0.0, row["t"] - restarted_at), 6)
            self.convergence_s[row["node"]] = elapsed
            self._emit(
                NetEventKind.CONVERGENCE, event.pid, {"elapsed_s": elapsed}
            )

    def _emit(self, kind: NetEventKind, pid: Pid | None, detail: dict) -> None:
        loop = asyncio.get_running_loop()
        t = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        self.bus.publish(TraceEvent(len(self.events), kind, pid, {"t": t, **detail}))

    # ----------------------------------------------------------- lifecycle

    def _build_process(self, pid: Pid, index: int):
        cfg = self.config
        if cfg.lock_service:
            return LockDinerProcess(pid, cfg.topology, seed=cfg.seed + index)
        return DinersMpProcess(
            pid, cfg.topology, eat_ticks=2, seed=cfg.seed + index, repair=True
        )

    async def start(self, duration_s: float) -> None:
        """Bring every node and proxy up; wire the peer address maps."""
        cfg = self.config
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        for i, pid in enumerate(cfg.topology.nodes):
            node = NodeServer(
                pid,
                cfg.topology,
                self._build_process(pid, i),
                host=cfg.host,
                tick_interval=cfg.tick_interval,
                bus=self.bus,
                t0=self._t0,
            )
            self.nodes[pid] = node
            await node.start_listening()

        policy = cfg.restart
        if cfg.schedule is not None:
            self.schedule = cfg.schedule
        elif cfg.chaos:
            self.schedule = build_schedule(
                cfg.topology,
                seed=cfg.seed,
                duration_s=duration_s,
                partitions=cfg.partitions,
                malicious_crashes=cfg.malicious_crashes,
                restarts=0 if policy is None else policy.max_restarts,
                restart_delay_s=0.5 if policy is None else policy.delay_s,
                byzantine=cfg.byzantine,
            )
        else:
            self.schedule = ChaosSchedule(seed=cfg.seed, duration_s=duration_s)
        if cfg.adaptive:
            # Deferred import: repro.adversary.feedback imports net.chaos.
            from ..adversary.feedback import FeedbackChaosController

            self.controller = FeedbackChaosController(
                self.schedule,
                cfg.topology,
                seed=cfg.seed,
                interval_s=cfg.adaptive_interval,
                on_fault=self._on_scheduled_fault,
                on_crash=self._kill_node,
                on_restart=self._restart_node,
                on_byzantine=self._subvert_node,
                on_decision=self._on_adversary_decision,
            )
        else:
            self.controller = ChaosController(
                self.schedule,
                on_fault=self._on_scheduled_fault,
                on_crash=self._kill_node,
                on_restart=self._restart_node,
                on_byzantine=self._subvert_node,
            )

        for p in cfg.topology.nodes:
            for q in cfg.topology.neighbors(p):
                link = (p, q)
                proxy = LinkProxy(
                    link,
                    cfg.host,
                    self.nodes[q].port,
                    profile=self.schedule.profiles.get(link),
                    # A string seed keeps per-link decisions reproducible
                    # across processes (hash() is salted; this is not).
                    rng=random.Random(f"{cfg.seed}:{link!r}"),
                    on_fault=self._on_chunk_fault,
                )
                await proxy.start(cfg.host)
                self.proxies[link] = proxy
                self.controller.register(proxy)

        for p in cfg.topology.nodes:
            peers = {
                q: (cfg.host, self.proxies[(p, q)].port)
                for q in cfg.topology.neighbors(p)
            }
            await self.nodes[p].connect_peers(peers)
        self._monitor_task = asyncio.create_task(self._monitor())

    async def run(self, duration_s: float) -> None:
        """Play the chaos schedule while the cluster serves for the window."""
        assert self._t0 is not None, "start() must run first"
        self._chaos_task = asyncio.create_task(
            self.controller.run(self._t0)
        )
        loop = asyncio.get_running_loop()
        remaining = self._t0 + duration_s - loop.time()
        if remaining > 0:
            await asyncio.sleep(remaining)

    async def stop(self) -> None:
        for task in (self._chaos_task, self._monitor_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        for node in self.nodes.values():
            await node.stop()
        for proxy in self.proxies.values():
            await proxy.close()

    # --------------------------------------------------------------- chaos

    def _on_scheduled_fault(self, event) -> None:
        self._emit(
            NetEventKind.CHAOS,
            event.node,
            {"kind": event.kind, "links": len(event.links)},
        )

    def _on_chunk_fault(self, kind: str, link) -> None:
        self.chunk_faults[kind] = self.chunk_faults.get(kind, 0) + 1

    def _on_adversary_decision(self, event, reason: str) -> None:
        self._emit(
            NetEventKind.ADVERSARY,
            event.node,
            {"kind": event.kind, "reason": reason, "links": len(event.links)},
        )

    async def _kill_node(self, pid: Pid) -> None:
        """The halt half of a malicious crash: the node simply stops."""
        node = self.nodes.get(pid)
        if node is None:
            return
        self.killed.append(pid)
        await node.stop()

    async def _subvert_node(self, pid: Pid) -> None:
        """The beyond-finite fault: swap the node's process for a Byzantine
        double that claims the lock forever and forges fork frames.  The
        server keeps running — from outside, the node "crashed" but never
        went quiet."""
        node = self.nodes.get(pid)
        if node is None or not node._running:
            return
        from ..adversary.byzantine import subvert  # deferred: import cycle

        try:
            node.process = subvert(node.process)
        except TypeError:
            return  # not a diner process; nothing to subvert
        self.byzantine.append(pid)
        self._emit(NetEventKind.BYZANTINE, pid, {})

    async def _restart_node(self, pid: Pid) -> None:
        """Relaunch a halted node under the configured restart policy.

        The replacement listens on the *same* port (neighbour proxies dial
        it by address), hosts a fresh process — randomized to an arbitrary
        state when the policy says so — and re-dials its outgoing chaos
        proxies, which the controller revived just before calling here.
        """
        cfg = self.config
        policy = cfg.restart
        if policy is None or policy.max_restarts <= 0:
            return
        old = self.nodes.get(pid)
        if old is None or old._running:
            return
        if self.restarts.get(pid, 0) >= policy.max_restarts:
            return
        count = self.restarts.get(pid, 0) + 1
        index = list(cfg.topology.nodes).index(pid)
        process = self._build_process(pid, index)
        if policy.arbitrary_state:
            rng = random.Random(f"{cfg.seed}:restart:{pid!r}:{count}")
            corrupt = getattr(process, "corrupt", None)
            if corrupt is not None:
                corrupt(rng)
        self._retired_counters[repr(pid)] = merge_counters(
            self._retired_counters.get(repr(pid), {}), old.counters()
        )
        node = NodeServer(
            pid,
            cfg.topology,
            process,
            host=cfg.host,
            port=old.port or 0,
            tick_interval=cfg.tick_interval,
            bus=self.bus,
            t0=self._t0,
            epoch=count,
        )
        for _ in range(20):
            try:
                await node.start_listening()
                break
            except OSError:
                await asyncio.sleep(0.05)  # old socket still in TIME_WAIT
        else:
            return  # port never came free; the node stays down
        self.nodes[pid] = node
        self.restarts[pid] = count
        self._crash_reported.discard(pid)
        peers = {
            q: (cfg.host, self.proxies[(pid, q)].port)
            for q in cfg.topology.neighbors(pid)
        }
        await node.connect_peers(peers)
        loop = asyncio.get_running_loop()
        restarted_at = round(loop.time() - self._t0, 6)
        self._awaiting_convergence[repr(pid)] = restarted_at
        self._emit(
            NetEventKind.NODE_RESTART,
            pid,
            {"epoch": count, "arbitrary": policy.arbitrary_state},
        )

    async def _monitor(self) -> None:
        """Liveness watchdog: report nodes whose tick loop died."""
        while True:
            await asyncio.sleep(0.2)
            for pid, node in self.nodes.items():
                task = node._tick_task
                dead = task is not None and task.done()
                if dead and pid not in self._crash_reported:
                    self._crash_reported.add(pid)
                    expected = pid in self.killed
                    self._emit(
                        NetEventKind.CRASH_DETECT,
                        pid,
                        {"expected": expected},
                    )

    # -------------------------------------------------------------- results

    def result(self, duration_s: float) -> ClusterResult:
        cfg = self.config
        counters = {
            repr(p): merge_counters(
                self._retired_counters.get(repr(p), {}), n.counters()
            )
            for p, n in self.nodes.items()
        }
        return ClusterResult(
            topology_spec=cfg.topology_spec,
            seed=cfg.seed,
            duration_s=duration_s,
            mode="soak" if cfg.lock_service else "run",
            nodes=[repr(p) for p in cfg.topology.nodes],
            counters=counters,
            events=sorted(self.events, key=lambda e: (e["t"], e["event"])),
            schedule=None if self.schedule is None else self.schedule.describe(),
            killed=[repr(p) for p in self.killed],
            byzantine=[repr(p) for p in self.byzantine],
            chunk_faults=dict(self.chunk_faults),
            restarts={repr(p): n for p, n in self.restarts.items()},
            convergence_s=dict(self.convergence_s),
        )


def merge_counters(
    older: Dict[str, int], newer: Dict[str, int]
) -> Dict[str, int]:
    """Fold a retired server incarnation's counters into its successor's.

    Everything is additive except ``epoch``, which identifies the latest
    incarnation rather than accumulating.
    """
    merged = dict(older)
    for key, value in newer.items():
        if key == "epoch":
            merged[key] = max(merged.get(key, 0), value)
        else:
            merged[key] = merged.get(key, 0) + value
    return merged


async def run_cluster(
    config: ClusterConfig, duration_s: float
) -> ClusterResult:
    """One complete supervised run: start → serve → stop → result."""
    supervisor = ClusterSupervisor(config)
    try:
        await supervisor.start(duration_s)
        await supervisor.run(duration_s)
    finally:
        await supervisor.stop()
    return supervisor.result(duration_s)


# ---------------------------------------------------------------- artefacts


def cluster_metrics(result: ClusterResult) -> MetricsRegistry:
    """Reduce a run to the standard metrics instruments."""
    registry = MetricsRegistry()
    for node in sorted(result.counters):
        for key, value in sorted(result.counters[node].items()):
            counter = registry.counter(f"net/{node}/{key}")
            counter.inc(value)
    grants = registry.counter("cluster/grants")
    grants.inc(result.total_grants)
    registry.counter("cluster/garbage_bytes").inc(result.total_garbage_bytes)
    registry.gauge("cluster/nodes").set(len(result.nodes))
    registry.gauge("cluster/killed").set(len(result.killed))
    registry.gauge("cluster/byzantine").set(len(result.byzantine))
    registry.counter("cluster/restarts").inc(sum(result.restarts.values()))
    for node in sorted(result.convergence_s):
        registry.gauge(f"cluster/convergence_s/{node}").set(
            result.convergence_s[node]
        )
    for kind in sorted(result.chunk_faults):
        registry.counter(f"chaos/chunk_faults/{kind}").inc(
            result.chunk_faults[kind]
        )
    scheduled = registry.counter("chaos/scheduled_faults")
    if result.schedule:
        scheduled.inc(len(result.schedule.get("events", ())))
    events_by_kind: Dict[str, int] = {}
    for event in result.events:
        kind = event["event"]
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
    for kind in sorted(events_by_kind):
        registry.counter(f"cluster/events/{kind}").inc(events_by_kind[kind])
    return registry


def artefact_header(result: ClusterResult, source: str) -> Dict[str, Any]:
    """The shared header of both cluster artefact files."""
    from .. import version as repro_version  # deferred: package-init cycle

    return {
        "source": source,
        "topology": result.topology_spec,
        "seed": result.seed,
        "duration_s": result.duration_s,
        "nodes": len(result.nodes),
        "version": repro_version(),
    }


def write_cluster_metrics(
    path: Path | str, result: ClusterResult, *, extra_header: Dict[str, Any] | None = None
) -> Path:
    source = "cluster-soak" if result.mode == "soak" else "cluster-run"
    header = artefact_header(result, source)
    if extra_header:
        header.update(extra_header)
    return write_metrics(
        path, cluster_metrics(result), header=header, include_meta=True
    )


def read_cluster_events(
    path: Path | str,
) -> tuple[Dict[str, Any], List[Dict[str, Any]], int]:
    """Parse an event-log artefact leniently.

    Returns ``(header, events, skipped_lines)``.  Unparseable or foreign
    lines are counted, not fatal — a soak cut short by a crash leaves a
    truncated tail, and the summary should still come out.
    """
    header: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(row, dict):
                skipped += 1
            elif row.get("kind") == "header":
                header = row
            elif row.get("kind") == "event":
                events.append(row)
            else:
                skipped += 1
    return header, events, skipped


def write_cluster_events(path: Path | str, result: ClusterResult) -> Path:
    """The event-log artefact: header (with the fault schedule), then one
    line per observed event in time order."""
    source = "soak-events" if result.mode == "soak" else "cluster-events"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": EVENTS_FORMAT_VERSION,
        "kind": "header",
        **artefact_header(result, source),
        "schedule": result.schedule,
        "killed": result.killed,
        "byzantine": result.byzantine,
        "restarts": result.restarts,
        "convergence_s": result.convergence_s,
    }
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n")
        for event in result.events:
            handle.write(
                json.dumps(
                    {"kind": "event", **event},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
    tmp.replace(path)
    return path
