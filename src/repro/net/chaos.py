"""Chaos at the socket layer: seeded fault schedules and link proxies.

Every peer link of a live cluster runs through a :class:`LinkProxy` — a
tiny asyncio TCP forwarder that can delay, drop, duplicate, and reorder
byte chunks, black-hole a partitioned link, and deliver a **malicious
crash** as the paper defines it operationally: a burst of arbitrary bytes
on every outgoing link, then silence.

Determinism contract: all *decisions* derive from :class:`ChaosSchedule`,
which is a pure function of ``(topology, seed, duration, profile)`` —
building it twice yields equal schedules, and the schedule is written into
the soak artefact so a run's faults can be audited after the fact.  Real
sockets make event *timing* environmental, but the injected-fault plan
(which links jitter and with what probabilities, when partitions open and
heal, who crashes maliciously and when) reproduces exactly for a seed.

Mapping to the paper's fault model (§2): the garbage burst is the wire
image of a malicious crash's "arbitrary steps before halting" — the
neighbours' decoders and ``on_message`` validators must absorb it, and the
:class:`~repro.net.wire_channel.WireChannel` mirrors the same semantics for
the in-process engine so the two fault repertoires never drift apart.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..sim.topology import Pid, Topology

#: Directed link identifier: ``(src_pid, dst_pid)``.
Link = Tuple[Pid, Pid]

#: Every fault kind a schedule may carry.  ``byzantine-crash`` is the
#: *beyond-the-model* fault: the node keeps emitting protocol-shaped frames
#: instead of halting (the paper's tolerance boundary, see
#: :mod:`repro.adversary.byzantine`).  ``replay`` re-injects captured frames
#: on a link — the adaptive adversary's third actuator.
EVENT_KINDS = frozenset(
    ("partition", "heal", "malicious-crash", "byzantine-crash", "restart",
     "replay")
)

#: Fault kinds that leave the named node crashed (a later ``restart`` may
#: legally target it).  A byzantine node never halts, so it is *not* here.
_CRASH_KINDS = frozenset(("malicious-crash",))

#: How many recently forwarded chunks a proxy retains for replay.
CAPTURE_DEPTH = 32


@dataclass(frozen=True)
class LinkProfile:
    """Continuous per-link misbehaviour (applies whenever the link is up)."""

    delay_s: float = 0.0  #: fixed extra latency per forwarded chunk
    jitter_s: float = 0.0  #: uniform extra latency on top of ``delay_s``
    drop_p: float = 0.0  #: probability a chunk is silently discarded
    dup_p: float = 0.0  #: probability a chunk is written twice
    reorder_p: float = 0.0  #: probability a chunk is held and swapped


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled discrete fault."""

    at_s: float  #: seconds after cluster start
    kind: str  #: ``partition`` | ``heal`` | ``malicious-crash`` | ``restart``
    #: Links affected (for partitions) or the crashing node's outgoing links.
    links: Tuple[Link, ...] = ()
    node: Optional[Pid] = None  #: the crashing/restarting node
    #: Garbage burst for a malicious crash, per affected link.
    garbage: Tuple[bytes, ...] = ()

    def describe(self) -> Dict[str, Any]:
        """JSON-ready rendering (garbage as lengths, not raw bytes)."""
        body: Dict[str, Any] = {
            "at_s": round(self.at_s, 6),
            "kind": self.kind,
            "links": [[repr(a), repr(b)] for a, b in self.links],
        }
        if self.node is not None:
            body["node"] = repr(self.node)
        if self.garbage:
            body["garbage_bytes"] = [len(g) for g in self.garbage]
        return body


@dataclass(frozen=True)
class ChaosSchedule:
    """The complete, reproducible fault plan for one run."""

    seed: int
    duration_s: float
    profiles: Dict[Link, LinkProfile] = field(default_factory=dict)
    events: Tuple[FaultEvent, ...] = ()

    @property
    def malicious_nodes(self) -> Tuple[Pid, ...]:
        return tuple(
            e.node for e in self.events if e.kind == "malicious-crash"
        )

    @property
    def byzantine_nodes(self) -> Tuple[Pid, ...]:
        return tuple(
            e.node for e in self.events if e.kind == "byzantine-crash"
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-ready audit record, embedded in soak artefacts."""
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "profiles": {
                f"{a!r}->{b!r}": vars(p).copy()
                for (a, b), p in sorted(
                    self.profiles.items(), key=lambda kv: repr(kv[0])
                )
            },
            "events": [e.describe() for e in self.events],
        }


def validate_schedule(schedule: ChaosSchedule) -> None:
    """Reject structurally impossible fault plans.

    Raises ``ValueError`` when an event kind is unknown, an event lies
    outside the run window, or — the bug this guards against — a
    ``restart`` targets a node with *no earlier crash entry*: the
    controller would revive links of a node that never went down, silently
    turning the plan into a different experiment.  :func:`build_schedule`
    and every schedule-file loader call this, so hand-edited or mutated
    schedules fail loudly instead of replaying something else.
    """
    crashed_at: Dict[Pid, float] = {}
    for event in schedule.events:
        if event.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind {event.kind!r}")
        if not 0.0 <= event.at_s <= schedule.duration_s:
            raise ValueError(
                f"{event.kind} at {event.at_s}s lies outside the "
                f"{schedule.duration_s}s run"
            )
        if event.kind in _CRASH_KINDS:
            if event.node is None:
                raise ValueError(f"{event.kind} without a node")
            crashed_at[event.node] = event.at_s
        elif event.kind == "byzantine-crash":
            if event.node is None:
                raise ValueError("byzantine-crash without a node")
        elif event.kind == "restart":
            if event.node is None:
                raise ValueError("restart without a node")
            when = crashed_at.get(event.node)
            if when is None or when > event.at_s:
                raise ValueError(
                    f"restart of {event.node!r} at {event.at_s}s has no "
                    "prior crash entry"
                )
        if event.garbage and len(event.garbage) != len(event.links):
            raise ValueError(
                f"{event.kind} at {event.at_s}s: {len(event.garbage)} "
                f"garbage bursts for {len(event.links)} links"
            )


def build_schedule(
    topology: Topology,
    *,
    seed: int,
    duration_s: float,
    partitions: int = 1,
    malicious_crashes: int = 1,
    flaky_links: float = 0.5,
    max_delay_s: float = 0.02,
    restarts: int = 0,
    restart_delay_s: float = 0.5,
    byzantine: int = 0,
) -> ChaosSchedule:
    """Derive the fault plan deterministically from ``seed``.

    * a ``flaky_links`` fraction of directed links get a nonzero
      :class:`LinkProfile` (delay/jitter/drop/dup/reorder drawn from the
      seed);
    * ``partitions`` partition windows, each cutting every link across a
      random node bipartition for a window inside the middle 60 % of the
      run, paired with its ``heal``;
    * ``malicious_crashes`` nodes crash maliciously in the last third of
      the run: one garbage burst per outgoing link, then the node halts;
    * with ``restarts > 0``, every crashed node gets a ``restart`` event
      ``restart_delay_s`` later (capped so recovery fits in the run) —
      the stabilization theorem's restart-into-arbitrary-state setting;
    * ``byzantine`` further nodes suffer the *beyond-finite* fault in the
      middle of the run: instead of halting after its arbitrary steps, the
      node keeps emitting protocol-shaped frames forever.  The paper's
      malicious-crash model ends with a halt, so these runs are expected
      to violate neighbour exclusion at the faulty node — the boundary
      demonstrated, not asserted.

    Pure function of its arguments — the reproducibility tests compare two
    builds structurally.  The result always passes
    :func:`validate_schedule`.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = random.Random(seed ^ 0xC4A05)
    links: List[Link] = []
    for p in topology.nodes:
        for q in topology.neighbors(p):
            links.append((p, q))
    links.sort(key=repr)

    profiles: Dict[Link, LinkProfile] = {}
    for link in links:
        if rng.random() >= flaky_links:
            continue
        profiles[link] = LinkProfile(
            delay_s=round(rng.uniform(0.0, max_delay_s / 2), 6),
            jitter_s=round(rng.uniform(0.0, max_delay_s / 2), 6),
            drop_p=round(rng.uniform(0.0, 0.05), 6),
            dup_p=round(rng.uniform(0.0, 0.05), 6),
            reorder_p=round(rng.uniform(0.0, 0.1), 6),
        )

    events: List[FaultEvent] = []
    nodes = list(topology.nodes)
    for _ in range(partitions):
        if len(nodes) < 2:
            break
        side_size = rng.randint(1, len(nodes) - 1)
        side = set(rng.sample(nodes, side_size))
        cut = tuple(
            (p, q) for (p, q) in links if (p in side) != (q in side)
        )
        start = rng.uniform(0.2, 0.5) * duration_s
        length = rng.uniform(0.1, 0.3) * duration_s
        events.append(FaultEvent(at_s=start, kind="partition", links=cut))
        events.append(
            FaultEvent(at_s=min(start + length, duration_s * 0.85),
                       kind="heal", links=cut)
        )
    crash_candidates = list(nodes)
    rng.shuffle(crash_candidates)
    for node in crash_candidates[malicious_crashes:malicious_crashes + byzantine]:
        out = tuple((p, q) for (p, q) in links if p == node)
        events.append(
            FaultEvent(
                at_s=rng.uniform(0.35, 0.55) * duration_s,
                kind="byzantine-crash",
                links=out,
                node=node,
            )
        )
    for node in crash_candidates[:malicious_crashes]:
        out = tuple((p, q) for (p, q) in links if p == node)
        garbage = tuple(
            bytes(rng.randrange(256) for _ in range(rng.randint(16, 128)))
            for _ in out
        )
        crash_at = rng.uniform(0.65, 0.8) * duration_s
        events.append(
            FaultEvent(
                at_s=crash_at,
                kind="malicious-crash",
                links=out,
                node=node,
                garbage=garbage,
            )
        )
        if restarts > 0:
            events.append(
                FaultEvent(
                    at_s=min(crash_at + restart_delay_s, duration_s * 0.9),
                    kind="restart",
                    links=out,
                    node=node,
                )
            )
    events.sort(key=lambda e: (e.at_s, e.kind))
    schedule = ChaosSchedule(
        seed=seed,
        duration_s=duration_s,
        profiles=profiles,
        events=tuple(events),
    )
    validate_schedule(schedule)
    return schedule


# ------------------------------------------------------------------ proxies


class LinkProxy:
    """One chaos-capable TCP forwarder for one directed link.

    Listens on an ephemeral localhost port; the *source* node connects here
    instead of to the destination directly, and every byte chunk passes
    through the fault pipeline (delay → drop → dup → reorder) unless the
    link is partitioned.  ``kill()`` implements the tail of a malicious
    crash: garbage toward the destination, then the pipe stays severed.
    """

    def __init__(
        self,
        link: Link,
        dst_host: str,
        dst_port: int,
        *,
        profile: LinkProfile | None = None,
        rng: random.Random | None = None,
        on_fault=None,
    ) -> None:
        self.link = link
        self.dst_host = dst_host
        self.dst_port = dst_port
        self.profile = profile or LinkProfile()
        self._rng = rng if rng is not None else random.Random(0)
        self._on_fault = on_fault  # callable(kind, link) for obs counters
        self.partitioned = False
        self._server: asyncio.base_events.Server | None = None
        self._dst_writer: asyncio.StreamWriter | None = None
        self._killed = False
        self.port: int | None = None
        self.chunks_forwarded = 0
        self.chunks_dropped = 0
        #: Ring buffer of recently forwarded chunks; :meth:`replay` feeds on
        #: it.  Byte chunks, not frames — the adversary replays what it saw
        #: on the wire, and the receiver's decoder + sequence numbers must
        #: absorb the stale copies.
        self.captured: Deque[bytes] = deque(maxlen=CAPTURE_DEPTH)
        self.chunks_replayed = 0

    async def start(self, host: str = "127.0.0.1") -> int:
        self._server = await asyncio.start_server(self._handle, host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            dst_reader, dst_writer = await asyncio.open_connection(
                self.dst_host, self.dst_port
            )
        except OSError:
            writer.close()
            return
        self._dst_writer = dst_writer
        held: Optional[bytes] = None  # chunk parked for reordering
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                if self._killed:
                    break
                if self.partitioned:
                    self.chunks_dropped += 1
                    self._note("partition-drop")
                    continue
                p = self.profile
                if p.drop_p and self._rng.random() < p.drop_p:
                    self.chunks_dropped += 1
                    self._note("drop")
                    continue
                if p.delay_s or p.jitter_s:
                    await asyncio.sleep(
                        p.delay_s + self._rng.uniform(0.0, p.jitter_s)
                    )
                out: List[bytes] = []
                if held is not None:
                    out = [chunk, held]  # held chunk goes *after* the new one
                    held = None
                    self._note("reorder")
                elif p.reorder_p and self._rng.random() < p.reorder_p:
                    held = chunk
                    continue
                else:
                    out = [chunk]
                if p.dup_p and self._rng.random() < p.dup_p:
                    out.append(out[-1])
                    self._note("dup")
                for piece in out:
                    dst_writer.write(piece)
                    self.chunks_forwarded += 1
                    self.captured.append(piece)
                await dst_writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if held is not None and not self._killed and not self.partitioned:
                try:
                    dst_writer.write(held)
                    await dst_writer.drain()
                except (ConnectionError, OSError):
                    pass
            dst_writer.close()
            # Close the source side too: when the destination dies (or the
            # link is killed), the source must see EOF so its reconnect
            # loop re-dials — otherwise a restarted destination would sit
            # behind a silently dead pipe forever.
            writer.close()

    def _note(self, kind: str) -> None:
        if self._on_fault is not None:
            self._on_fault(kind, self.link)

    async def replay(self, count: int = CAPTURE_DEPTH) -> int:
        """Re-inject up to ``count`` captured chunks toward the destination.

        The adaptive adversary's frame-replay actuator: stale frames carry
        stale per-link sequence numbers, so a correct receiver discards
        them — but a protocol relying on "each frame arrives once" would
        double-grant a fork here.  Returns the number of chunks written
        (0 when the link is down, severed, or has seen no traffic).
        """
        writer = self._dst_writer
        if writer is None or self._killed or self.partitioned:
            return 0
        chunks = list(self.captured)[-count:]
        written = 0
        try:
            for chunk in chunks:
                writer.write(chunk)
                written += 1
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        if written:
            self.chunks_replayed += written
            self._note("replay")
        return written

    async def kill(self, garbage: bytes = b"") -> None:
        """Malicious-crash tail: spray ``garbage`` at the destination, then
        sever the link for good."""
        self._killed = True
        writer = self._dst_writer
        if writer is not None and garbage:
            try:
                writer.write(garbage)
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        self._note("malicious-garbage")

    def revive(self) -> None:
        """Un-sever a killed link so a restarted node can use it again.

        The proxy's listening socket never closed; clearing ``_killed``
        lets fresh connections (from the relaunched source node) forward
        normally, under the same link profile as before.
        """
        self._killed = False

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class ChaosController:
    """Owns every :class:`LinkProxy` of a cluster and plays the schedule.

    ``run()`` sleeps between scheduled fault times and applies each event:
    partitions toggle the affected proxies, a malicious crash sprays the
    scheduled garbage on the victim's outgoing links and then asks the
    supervisor (via ``on_crash``) to halt the node.  Every applied event is
    reported through ``on_fault`` so it lands in the obs stream.
    """

    def __init__(self, schedule: ChaosSchedule, *, on_fault=None,
                 on_crash=None, on_restart=None, on_byzantine=None) -> None:
        self.schedule = schedule
        self.proxies: Dict[Link, LinkProxy] = {}
        self._on_fault = on_fault  # callable(event: FaultEvent)
        self._on_crash = on_crash  # async callable(node)
        self._on_restart = on_restart  # async callable(node)
        self._on_byzantine = on_byzantine  # async callable(node)
        self.applied: List[FaultEvent] = []

    def register(self, proxy: LinkProxy) -> None:
        self.proxies[proxy.link] = proxy

    async def run(self, started_at: float, clock=None) -> None:
        """Apply the schedule relative to ``started_at`` (loop time)."""
        loop = asyncio.get_running_loop()
        now = clock if clock is not None else loop.time
        for event in self.schedule.events:
            delay = started_at + event.at_s - now()
            if delay > 0:
                await asyncio.sleep(delay)
            await self.apply(event)

    async def apply(self, event: FaultEvent) -> None:
        if event.kind == "partition":
            for link in event.links:
                proxy = self.proxies.get(link)
                if proxy is not None:
                    proxy.partitioned = True
        elif event.kind == "heal":
            for link in event.links:
                proxy = self.proxies.get(link)
                if proxy is not None:
                    proxy.partitioned = False
        elif event.kind == "malicious-crash":
            for link, garbage in zip(event.links, event.garbage):
                proxy = self.proxies.get(link)
                if proxy is not None:
                    await proxy.kill(garbage)
            if self._on_crash is not None and event.node is not None:
                await self._on_crash(event.node)
        elif event.kind == "byzantine-crash":
            # No link action: the node is subverted, not severed — it keeps
            # talking protocol-shaped frames through healthy proxies.
            if self._on_byzantine is not None and event.node is not None:
                await self._on_byzantine(event.node)
        elif event.kind == "replay":
            for link in event.links:
                proxy = self.proxies.get(link)
                if proxy is not None:
                    await proxy.replay()
        elif event.kind == "restart":
            for link in event.links:
                proxy = self.proxies.get(link)
                if proxy is not None:
                    proxy.revive()
            if self._on_restart is not None and event.node is not None:
                await self._on_restart(event.node)
        self.applied.append(event)
        if self._on_fault is not None:
            self._on_fault(event)
