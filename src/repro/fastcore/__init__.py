"""fastcore — the packed-state fast backend.

The object model in :mod:`repro.sim` stays the reference implementation;
this package re-encodes configurations as packed vectors + bitsets and runs
the identical step/havoc loop over them, 10×+ faster.  Selection mirrors the
``channel_factory`` seam of the mp engine: callers pick a *state backend*
(``"object"`` or ``"fast"``) and get an engine with the same run surface.

>>> engine = make_engine(topology, algorithm, backend="fast", seed=7)
>>> engine.run(10_000)

Parity between the backends is not aspirational — see
:mod:`repro.fastcore.parity` for the co-run harness and
``tests/fastcore/`` for the seeded battery that pins them step-for-step.
"""

from __future__ import annotations

from ..sim.engine import Engine
from ..sim.network import System
from .engine import FastEngine
from .explorer import FastReachability, FastTransitionSystem
from .packed import PackedCodec, PackedState, UnsupportedBackendError
from .parity import ParityError, ParityReport, co_run, co_run_results

#: Registered state backends, by name (the ``state_backend`` seam).
STATE_BACKENDS = ("object", "fast")


def make_engine(
    topology,
    algorithm,
    daemon=None,
    *,
    backend: str = "object",
    state_backend=None,
    initially_dead=(),
    initial=None,
    **kwargs,
):
    """Build an engine over the selected state backend.

    ``backend`` names a registered backend; ``state_backend`` (mirroring
    ``MpEngine(channel_factory=...)``) accepts a callable with the
    :class:`FastEngine` constructor signature for custom backends and wins
    over ``backend`` when given.  The ``"object"`` backend assembles the
    reference ``System`` + ``Engine`` pair; both return objects share the
    run/step/snapshot surface.
    """
    if state_backend is not None:
        return state_backend(
            topology,
            algorithm,
            daemon,
            initially_dead=initially_dead,
            initial=initial,
            **kwargs,
        )
    if backend == "fast":
        return FastEngine(
            topology,
            algorithm,
            daemon,
            initially_dead=initially_dead,
            initial=initial,
            **kwargs,
        )
    if backend != "object":
        raise UnsupportedBackendError(
            f"unknown state backend {backend!r}; expected one of {STATE_BACKENDS}"
        )
    if initial is not None:
        system = System.from_configuration(topology, algorithm, initial)
    else:
        system = System(topology, algorithm, initially_dead=initially_dead)
    return Engine(system, daemon, **kwargs)


__all__ = [
    "FastEngine",
    "FastReachability",
    "FastTransitionSystem",
    "PackedCodec",
    "PackedState",
    "ParityError",
    "ParityReport",
    "STATE_BACKENDS",
    "UnsupportedBackendError",
    "co_run",
    "co_run_results",
    "make_engine",
]
