"""The packed-state engine: bit-for-bit the object engine, много faster.

:class:`FastEngine` runs the same fault → malice → hunger → action step
cycle as :class:`repro.sim.engine.Engine`, over the packed encoding of
:mod:`repro.fastcore.packed` instead of the object model.  Parity is exact,
not approximate:

* **RNG** — every ``random.Random`` draw happens in the same order with the
  same arguments: havoc target sampling replays ``System.havoc_process``'s
  recipe (same target list, same ``randint``/``sample`` calls, same domain
  objects), transient faults replay ``System.randomize`` (same local-domain
  dict order, same ``topology.edges`` iteration order), hunger policies are
  consulted per live process in node order, and the daemon draws only when
  the object daemon would.
* **scheduling** — the weakly-fair ledger is reimplemented over packed
  enabled-bits with identical semantics (consecutive-observation ages,
  first-strict-max oldest, patience), so the chosen ``(pid, action)``
  sequence matches the object :class:`~repro.sim.scheduler.WeaklyFairDaemon`
  choice-for-choice; :class:`~repro.sim.scheduler.RoundRobinDaemon` is
  mirrored deterministically.
* **events** — with a recorder or bus attached, the engine emits byte-equal
  :class:`~repro.sim.trace.TraceEvent` streams (including pre-action locals
  payloads) and identical snapshot cadences.

The speed comes from *incremental* guard evaluation: executing an action at
``p`` can only change the guards of ``p`` and its neighbours (guards read
own locals, neighbour locals and incident edges — nothing else), so each
step re-evaluates a distance-1 neighbourhood instead of the whole system,
and each re-evaluation is a handful of bitset operations instead of a dict
walk.  Unsupported pieces (custom algorithms, adversarial daemons, foreign
fault events) raise :class:`~repro.fastcore.packed.UnsupportedBackendError`
up front rather than silently diverging.
"""

from __future__ import annotations

import random
from collections import Counter
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.configuration import Configuration
from ..sim.engine import RunResult, StopPredicate
from ..sim.errors import DeadProcessError, SchedulingError, UnknownProcessError
from ..sim.faults import BenignCrash, FaultPlan, MaliciousCrash, TransientFault
from ..sim.hunger import AlwaysHungry, HungerPolicy, NeverHungry, SelectiveHunger
from ..sim.scheduler import Daemon, RoundRobinDaemon, WeaklyFairDaemon
from ..sim.topology import Pid, Topology
from ..sim.trace import EventKind, TraceEvent, TraceRecorder
from .packed import (
    ACTION_NAMES,
    ALIVE,
    DEAD,
    MALICIOUS,
    STATE_VALUES,
    PackedCodec,
    PackedState,
    UnsupportedBackendError,
    apply_action,
    enabled_bits,
)

_VAR_NAMES = ("state", "needs", "depth")


class FastEngine:
    """Drop-in engine over packed state.

    Construction mirrors :class:`repro.sim.engine.Engine` except that the
    system is described by ``(topology, algorithm)`` instead of a mutable
    :class:`~repro.sim.network.System` (the packed encoding *is* the
    system).  ``initial`` starts from an arbitrary configuration, matching
    ``System.from_configuration``.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm,
        daemon: Daemon | None = None,
        *,
        hunger: HungerPolicy | None = None,
        faults: FaultPlan | None = None,
        recorder: TraceRecorder | None = None,
        bus=None,
        seed: int = 0,
        rng: random.Random | None = None,
        initially_dead: Iterable[Pid] = (),
        initial: Configuration | None = None,
    ) -> None:
        self.codec = PackedCodec(topology, algorithm)
        codec = self.codec
        if initial is not None:
            ps = codec.pack(initial)
        else:
            ps = codec.initial_state(initially_dead)
        self._ps = ps
        self.topology = topology
        self.algorithm = algorithm
        self.hunger = hunger
        self.faults = faults
        self.recorder = recorder
        self.bus = bus
        self.rng = rng if rng is not None else random.Random(seed)
        self.step_count = 0
        #: Executed algorithm actions, keyed by ``(pid, action_name)``.
        self.action_counts: Counter = Counter()
        self._n = codec.n
        self._pids = codec.pids
        self._nbrs = codec.nbrs
        self._d_const = codec.d_const
        self._cap = codec.cap
        # Derived whole-system bitsets, maintained incrementally.
        self._nonT_mask = 0
        self._e_mask = 0
        self._malicious_mask = 0
        for p in range(self._n):
            if ps.state[p] != 0:
                self._nonT_mask |= 1 << p
            if ps.state[p] == 2:
                self._e_mask |= 1 << p
            if ps.status[p] == MALICIOUS:
                self._malicious_mask |= 1 << p
        # Daemon mirror.
        self.daemon = daemon
        if daemon is None or type(daemon) is WeaklyFairDaemon:
            self._round_robin = False
            self.patience = daemon.patience if daemon is not None else 64
        elif type(daemon) is RoundRobinDaemon:
            self._round_robin = True
            self._rr_cursor = 0
        else:
            raise UnsupportedBackendError(
                f"fast backend supports WeaklyFairDaemon/RoundRobinDaemon, "
                f"not {type(daemon).__name__}"
            )
        # Fairness ledger state (weakly-fair mode).
        self._tick = 0
        self._observed_bits = [0] * self._n
        self._since = [0] * (self._n * 5)
        self._heap: List[Tuple[int, int, int]] = []
        self._ledger_dirty: List[int] = []
        # Enabled bits per process + total count.
        self._enab = [0] * self._n
        self._enab_count = 0
        for p in range(self._n):
            bits = self._guard(p)
            self._enab[p] = bits
            self._enab_count += bits.bit_count()
            if bits:
                self._ledger_dirty.append(p)
        # Fault plan mirror.
        self._malicious_budget: Dict[Pid, int] = (
            faults.malicious_budget() if faults is not None else {}
        )
        if faults is not None:
            for event in faults.events:
                if not isinstance(
                    event, (BenignCrash, MaliciousCrash, TransientFault)
                ):
                    raise UnsupportedBackendError(
                        f"fast backend cannot apply {type(event).__name__}"
                    )
        # Hunger classification: 0 = none, 1 = constant vector, 2 = generic.
        if hunger is None or algorithm.hunger_variable is None:
            self._hunger_mode = 0
        elif type(hunger) in (AlwaysHungry, NeverHungry, SelectiveHunger):
            self._hunger_mode = 1
            self._hunger_vector = [
                bool(hunger.wants(pid, 0, None)) for pid in self._pids
            ]
            self._dirty_needs = set(range(self._n))
        else:
            self._hunger_mode = 2

    # -------------------------------------------------------------- guards

    def _guard(self, p: int) -> int:
        ps = self._ps
        return enabled_bits(
            p,
            ps.state,
            ps.needs,
            ps.depth,
            ps.status,
            ps.anc,
            ps.desc,
            self._nonT_mask,
            self._e_mask,
            self._d_const,
            self._cap,
        )

    def _recompute(self, p: int) -> None:
        """Refresh ``p``'s enabled bits after any state it reads changed."""
        new = self._guard(p)
        old = self._enab[p]
        if new != old:
            self._enab[p] = new
            self._enab_count += new.bit_count() - old.bit_count()
            self._ledger_dirty.append(p)

    def _recompute_around(self, p: int) -> None:
        self._recompute(p)
        for q in self._nbrs[p]:
            self._recompute(q)

    # ---------------------------------------------------------------- step

    def step(self) -> bool:
        """One engine step; mirrors ``Engine.step`` exactly."""
        step = self.step_count
        faults = self.faults
        pending_faults = faults is not None and not faults.exhausted()
        if pending_faults:
            self._apply_due_faults(step)
        if self._malicious_mask:
            self._malice_phase(step)
        if self._hunger_mode:
            self._refresh_hunger(step)

        if self._enab_count:
            if self._round_robin:
                p, a = self._select_rr()
            else:
                p, a = self._select_wf()
            pid = self._pids[p]
            name = ACTION_NAMES[a]
            payload = self._locals_payload(p) if self.observed else None
            self._execute(p, a)
            self.action_counts[(pid, name)] += 1
            if self.bus is not None or self.recorder is not None:
                self._emit(TraceEvent(step, EventKind.ACTION, pid, name, payload))
        else:
            if not pending_faults and not self._malicious_mask:
                return False
            if self.bus is not None or self.recorder is not None:
                self._emit(TraceEvent(step, EventKind.IDLE))

        self.step_count += 1
        if self.recorder is not None:
            self.recorder.maybe_snapshot(self.step_count, self.snapshot())
        return True

    # ----------------------------------------------------------------- run

    def run(
        self,
        max_steps: int,
        *,
        stop_when: StopPredicate | None = None,
        check_every: int = 1,
    ) -> RunResult:
        """Run until quiescence, ``stop_when``, or ``max_steps``."""
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if self.recorder is not None:
            self.recorder.force_snapshot(self.step_count, self.snapshot())

        taken = 0
        if stop_when is not None and stop_when(self.snapshot()):
            return self._result(taken, stopped=True)
        step = self.step
        while taken < max_steps:
            if not step():
                return self._result(taken, quiescent=True)
            taken += 1
            if stop_when is not None and taken % check_every == 0:
                if stop_when(self.snapshot()):
                    return self._result(taken, stopped=True)
        return self._result(taken, exhausted=True)

    def run_to_quiescence(self, max_steps: int) -> RunResult:
        return self.run(max_steps)

    def run_profiled(self, max_steps: int, **kwargs):
        """:meth:`run` under ``cProfile``; returns ``(result, profile)``."""
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        try:
            result = self.run(max_steps, **kwargs)
        finally:
            profile.disable()
        return result, profile

    def _result(
        self,
        steps: int,
        *,
        quiescent: bool = False,
        stopped: bool = False,
        exhausted: bool = False,
    ) -> RunResult:
        final = self.snapshot()
        if self.recorder is not None:
            self.recorder.force_snapshot(self.step_count, final)
        return RunResult(
            steps=steps,
            quiescent=quiescent,
            stopped=stopped,
            exhausted=exhausted,
            final=final,
        )

    # ----------------------------------------------------------- selection

    def _select_wf(self) -> Tuple[int, int]:
        """Mirror of ``WeaklyFairDaemon.select`` over packed enabled bits.

        Ages are tracked as "tick the action was last (re-)observed enabled";
        a min-heap on that tick yields the ledger's first-strict-max oldest
        action in O(log) amortized, and the random path draws exactly when
        the object daemon draws.
        """
        tick = self._tick + 1
        self._tick = tick
        obs = self._observed_bits
        enab = self._enab
        dirty = self._ledger_dirty
        if dirty:
            since = self._since
            heap = self._heap
            for p in dirty:
                old = obs[p]
                new = enab[p]
                gained = new & ~old
                if gained:
                    base = p * 5
                    while gained:
                        b = gained & -gained
                        a = b.bit_length() - 1
                        gained ^= b
                        since[base + a] = tick
                        heappush(heap, (tick, p, a))
                obs[p] = new
            del dirty[:]
        heap = self._heap
        since = self._since
        while True:
            t, p, a = heap[0]
            if (obs[p] >> a) & 1 and since[p * 5 + a] == t:
                break
            heappop(heap)
        if tick - t + 1 >= self.patience:
            choice_p, choice_a = p, a
        else:
            k = self.rng.randrange(self._enab_count)
            choice_p, choice_a = self._nth_enabled(k)
        # fired(): drop the key; if still enabled it is re-observed at age 1.
        obs[choice_p] &= ~(1 << choice_a)
        dirty.append(choice_p)
        return choice_p, choice_a

    def _nth_enabled(self, k: int) -> Tuple[int, int]:
        enab = self._enab
        for p in range(self._n):
            e = enab[p]
            if e:
                c = e.bit_count()
                if k < c:
                    while k:
                        e &= e - 1
                        k -= 1
                    return p, (e & -e).bit_length() - 1
                k -= c
        raise SchedulingError("enabled count out of sync")  # pragma: no cover

    def _select_rr(self) -> Tuple[int, int]:
        """Mirror of ``RoundRobinDaemon.select``."""
        enab = self._enab
        n = self._n
        cur = self._rr_cursor
        for offset in range(n):
            p = cur + offset
            if p >= n:
                p -= n
            e = enab[p]
            if e:
                self._rr_cursor = (p + 1) % n
                del self._ledger_dirty[:]
                return p, (e & -e).bit_length() - 1
        raise SchedulingError("no enabled action (select on empty set?)")

    # ------------------------------------------------------------- execute

    def _execute(self, p: int, a: int) -> None:
        ps = self._ps
        apply_action(ps, p, a, self._nbrs[p], self._cap)
        bp = 1 << p
        s = ps.state[p]
        if s:
            self._nonT_mask |= bp
        else:
            self._nonT_mask &= ~bp
        if s == 2:
            self._e_mask |= bp
        else:
            self._e_mask &= ~bp
        self._recompute_around(p)

    # -------------------------------------------------------------- faults

    def _apply_due_faults(self, step: int) -> None:
        for event in self.faults.due(step):
            self._apply_fault(event, step)

    def _apply_fault(self, event, step: int) -> None:
        emitting = self.bus is not None or self.recorder is not None
        if isinstance(event, MaliciousCrash):
            p = self._pid_index(event.pid)
            if event.malicious_steps == 0:
                self._kill(p)
                if emitting:
                    self._emit(
                        TraceEvent(step, EventKind.CRASH, event.pid, "malicious")
                    )
            else:
                self._mark_malicious(p)
                if emitting:
                    self._emit(
                        TraceEvent(
                            step,
                            EventKind.MALICE_BEGIN,
                            event.pid,
                            event.malicious_steps,
                        )
                    )
        elif isinstance(event, BenignCrash):
            self._kill(self._pid_index(event.pid))
            if emitting:
                self._emit(TraceEvent(step, EventKind.CRASH, event.pid, "benign"))
        elif isinstance(event, TransientFault):
            self._randomize(self.rng, event.pids)
            if emitting:
                self._emit(TraceEvent(step, EventKind.TRANSIENT, None, event.pids))
        else:
            raise UnsupportedBackendError(
                f"fast backend cannot apply {type(event).__name__}"
            )

    def inject(self, event) -> None:
        """Apply a fault event immediately, outside any schedule."""
        step = self.step_count
        if isinstance(event, MaliciousCrash) and event.malicious_steps > 0:
            self._mark_malicious(self._pid_index(event.pid))
            self._malicious_budget[event.pid] = event.malicious_steps
            if self.bus is not None or self.recorder is not None:
                self._emit(
                    TraceEvent(
                        step, EventKind.MALICE_BEGIN, event.pid, event.malicious_steps
                    )
                )
            return
        self._apply_fault(event, step)

    def _pid_index(self, pid: Pid) -> int:
        try:
            return self.codec.index[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def _kill(self, p: int) -> None:
        ps = self._ps
        ps.status[p] = DEAD
        self._malicious_mask &= ~(1 << p)
        self._recompute(p)

    def _mark_malicious(self, p: int) -> None:
        ps = self._ps
        if ps.status[p] == DEAD:
            raise DeadProcessError(self._pids[p])
        ps.status[p] = MALICIOUS
        self._malicious_mask |= 1 << p
        self._recompute(p)

    def _malice_phase(self, step: int) -> None:
        emitting = self.bus is not None or self.recorder is not None
        m = self._malicious_mask
        while m:
            p = (m & -m).bit_length() - 1
            m &= m - 1
            pid = self._pids[p]
            budget = self._malicious_budget.get(pid, 0)
            if budget > 0:
                self._havoc(p)
                if emitting:
                    self._emit(TraceEvent(step, EventKind.HAVOC, pid))
                self._malicious_budget[pid] = budget - 1
            if self._malicious_budget.get(pid, 0) <= 0:
                self._kill(p)
                if emitting:
                    self._emit(
                        TraceEvent(step, EventKind.CRASH, pid, "malice exhausted")
                    )

    def _havoc(self, p: int) -> None:
        """Replay ``System.havoc_process`` draw-for-draw on packed state."""
        rng = self.rng
        codec = self.codec
        pid = self._pids[p]
        targets: List[Tuple[str, object]] = [
            ("local", name) for name in codec.local_domains
        ]
        targets.extend(("edge", q) for q in self.topology.neighbors(pid))
        count = rng.randint(1, len(targets))
        for kind, key in rng.sample(targets, count):
            if kind == "local":
                value = codec.local_domains[key].sample(rng)
                self._write_local(p, key, value)
            else:
                q = codec.index[key]
                e_dom = self._edge_domain(p, q)
                self._orient_edge(p, q, e_dom.sample(rng))
        self._recompute_around(p)

    def _write_local(self, p: int, name: str, value) -> None:
        ps = self._ps
        if name == "state":
            code = 0 if value == "T" else (1 if value == "H" else 2)
            ps.state[p] = code
            bp = 1 << p
            if code:
                self._nonT_mask |= bp
            else:
                self._nonT_mask &= ~bp
            if code == 2:
                self._e_mask |= bp
            else:
                self._e_mask &= ~bp
        elif name == "needs":
            ps.needs[p] = value
            if self._hunger_mode == 1:
                self._dirty_needs.add(p)
        else:
            ps.depth[p] = value

    def _edge_domain(self, i: int, j: int):
        for _e, a, b, dom in self.codec.edge_order:
            if (a == i and b == j) or (a == j and b == i):
                return dom
        raise UnknownProcessError((self._pids[i], self._pids[j]))  # pragma: no cover

    def _orient_edge(self, i: int, j: int, value: Pid) -> None:
        """Point the edge ``{i, j}`` at ``value`` (the new ancestor)."""
        ps = self._ps
        a = i if value == self._pids[i] else j
        d = j if a == i else i
        ba, bd = 1 << a, 1 << d
        ps.anc[d] |= ba
        ps.desc[d] &= ~ba
        ps.anc[a] &= ~bd
        ps.desc[a] |= bd

    def _randomize(self, rng: random.Random, pids=None) -> None:
        """Replay ``System.randomize`` draw-for-draw on packed state."""
        codec = self.codec
        chosen = tuple(self._pids if pids is None else pids)
        chosen_idx = set()
        for pid in chosen:
            p = self._pid_index(pid)
            chosen_idx.add(p)
            for name, domain in codec.local_domains.items():
                self._write_local(p, name, domain.sample(rng))
        for _e, i, j, dom in codec.edge_order:
            if i in chosen_idx or j in chosen_idx:
                self._orient_edge(i, j, dom.sample(rng))
        touched = set(chosen_idx)
        for p in chosen_idx:
            touched.update(self._nbrs[p])
        for p in sorted(touched):
            self._recompute(p)

    # -------------------------------------------------------------- hunger

    def _refresh_hunger(self, step: int) -> None:
        ps = self._ps
        status = ps.status
        needs = ps.needs
        if self._hunger_mode == 1:
            dirty = self._dirty_needs
            if not dirty:
                return
            vector = self._hunger_vector
            for p in dirty:
                if status[p] == ALIVE and needs[p] != vector[p]:
                    needs[p] = vector[p]
                    self._recompute(p)
            dirty.clear()
        else:
            wants = self.hunger.wants
            rng = self.rng
            for p in range(self._n):
                if status[p] == ALIVE:
                    value = wants(self._pids[p], step, rng)
                    if needs[p] != value:
                        needs[p] = value
                        self._recompute(p)

    # ------------------------------------------------------------- observe

    @property
    def observed(self) -> bool:
        return self.recorder is not None or (
            self.bus is not None and self.bus.active
        )

    def _emit(self, event: TraceEvent) -> None:
        if self.bus is not None:
            self.bus.publish(event)
        if self.recorder is not None:
            self.recorder.record_event(event)

    def _locals_payload(self, p: int) -> Dict[str, object]:
        ps = self._ps
        return {
            "state": STATE_VALUES[ps.state[p]],
            "needs": ps.needs[p],
            "depth": ps.depth[p],
        }

    # ------------------------------------------------------------- queries

    def snapshot(self) -> Configuration:
        """Decode the current packed state into a Configuration."""
        return self.codec.unpack(self._ps)

    def packed_state(self) -> PackedState:
        """A copy of the current packed state (for explorers/tests)."""
        return self._ps.copy()

    def is_live(self, pid: Pid) -> bool:
        return self._ps.status[self._pid_index(pid)] == ALIVE

    def is_quiescent(self) -> bool:
        return self._enab_count == 0

    def eats_of(self, pid: Pid, enter_action: Optional[str] = None) -> int:
        if enter_action is None:
            enter_action = self.algorithm.enter_action
        return self.action_counts[(pid, enter_action)]

    def total_eats(self, enter_action: Optional[str] = None) -> int:
        if enter_action is None:
            enter_action = self.algorithm.enter_action
        return sum(
            count
            for (pid, name), count in self.action_counts.items()
            if name == enter_action
        )
