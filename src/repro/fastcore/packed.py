"""Packed state: the fast core's bitset encoding of a configuration.

The object model (:mod:`repro.sim`) keeps one dict per process and one dict
entry per edge; every guard evaluation walks Python objects.  The fast core
re-encodes the same state as flat per-process vectors plus per-process
*bitsets* (arbitrary-precision ints, one bit per process):

* ``state`` — ``0/1/2`` for ``T/H/E`` (one int per process);
* ``needs`` — the hunger input bit;
* ``depth`` — the distance-to-farthest-descendant estimate;
* ``status`` — ``0`` alive, ``1`` malicious, ``2`` dead;
* ``anc``/``desc`` — per-process ancestor/descendant bitsets, the packed
  form of every edge variable (the set bit names the higher-priority
  endpoint, exactly the Figure 1 edge convention).

Bitset operands act on the *whole process set at once*: ``anc[p] & nonT``
evaluates the paper's ``∀ ancestor q: state.q = T`` for all ancestors in one
machine operation, which is where the speedup over per-neighbour dict reads
comes from.  :func:`enabled_bits` below is the single shared definition of
the five guards over this encoding; the fast engine and the fast explorer
both call it, so they cannot drift apart.

:class:`PackedCodec` converts between this encoding and the object model's
:class:`~repro.sim.configuration.Configuration` — losslessly, so parity can
be asserted configuration-by-configuration — and packs a state into a
compact ``bytes`` key for the checker's visited set (numpy does the bulk
array conversion for analysis consumers via :meth:`PackedState.as_arrays`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.algorithm import NADiners
from ..core.state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_FIXDEPTH,
    ACTION_JOIN,
    ACTION_LEAVE,
    VAR_DEPTH,
    VAR_NEEDS,
    VAR_STATE,
)
from ..sim.configuration import Configuration
from ..sim.errors import SimulationError, UnknownProcessError
from ..sim.topology import Pid, Topology

#: T/H/E codes.  Order matters: it is the FiniteDomain declaration order.
STATE_VALUES: Tuple[str, ...] = ("T", "H", "E")
STATE_CODE: Dict[str, int] = {v: i for i, v in enumerate(STATE_VALUES)}

#: Action bit positions, in declaration order (= enabled-list order).
ACTION_NAMES: Tuple[str, ...] = (
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_FIXDEPTH,
)
A_JOIN, A_LEAVE, A_ENTER, A_EXIT, A_FIXDEPTH = range(5)

ALIVE, MALICIOUS, DEAD = 0, 1, 2


class UnsupportedBackendError(SimulationError):
    """The fast backend cannot represent this algorithm/daemon/fault mix."""


def enabled_bits(
    p: int,
    state: List[int],
    needs: List[bool],
    depth: List[int],
    status: List[int],
    anc: List[int],
    desc: List[int],
    nonT_mask: int,
    e_mask: int,
    d_const: int,
    cap: Optional[int],
) -> int:
    """The 5-bit enabled-action set of process ``p`` (0 if not alive).

    Bit ``k`` set means action ``ACTION_NAMES[k]`` is enabled — identical,
    by construction, to evaluating the object model's five guards.
    """
    if status[p]:
        return 0
    s = state[p]
    anc_nonT = anc[p] & nonT_mask
    bits = 0
    if s == 0:
        if needs[p] and not anc_nonT:
            bits = 1  # join
    elif s == 1:
        if anc_nonT:
            bits = 2  # leave
        elif not (desc[p] & e_mask):
            bits = 4  # enter
    else:
        bits = 8  # exit: state = E
    d = depth[p]
    if d > d_const:
        bits |= 8  # exit: depth beyond the cycle-detection threshold
    dm = desc[p]
    while dm:
        q = (dm & -dm).bit_length() - 1
        dm &= dm - 1
        pv = depth[q] + 1
        if cap is not None and pv > cap:
            pv = cap
        if d < pv:
            bits |= 16  # fixdepth
            break
    return bits


def apply_action(
    ps: "PackedState",
    p: int,
    a: int,
    nbrs: Tuple[int, ...],
    cap: Optional[int],
) -> None:
    """Execute action ``a`` at process ``p`` in place — the packed form of
    the five NADiners commands, shared by the fast engine and explorer."""
    if a == A_JOIN:
        ps.state[p] = 1
    elif a == A_LEAVE:
        ps.state[p] = 0
    elif a == A_ENTER:
        ps.state[p] = 2
    elif a == A_EXIT:
        # state := T; depth := 0; every incident edge points away from p.
        bp = 1 << p
        ps.state[p] = 0
        ps.depth[p] = 0
        anc = ps.anc
        desc = ps.desc
        for q in nbrs:
            bq = 1 << q
            anc[p] |= bq
            desc[p] &= ~bq
            anc[q] &= ~bp
            desc[q] |= bp
    else:
        # fixdepth: adopt the largest violating propagated estimate.
        depth = ps.depth
        best = depth[p]
        m = ps.desc[p]
        while m:
            q = (m & -m).bit_length() - 1
            m &= m - 1
            pv = depth[q] + 1
            if cap is not None and pv > cap:
                pv = cap
            if pv > best:
                best = pv
        depth[p] = best


class PackedState:
    """One mutable packed configuration (plain lists + int bitsets)."""

    __slots__ = ("state", "needs", "depth", "status", "anc", "desc")

    def __init__(
        self,
        state: List[int],
        needs: List[bool],
        depth: List[int],
        status: List[int],
        anc: List[int],
        desc: List[int],
    ) -> None:
        self.state = state
        self.needs = needs
        self.depth = depth
        self.status = status
        self.anc = anc
        self.desc = desc

    def copy(self) -> "PackedState":
        return PackedState(
            self.state[:],
            self.needs[:],
            self.depth[:],
            self.status[:],
            self.anc[:],
            self.desc[:],
        )

    def as_arrays(self):
        """Numpy views of the per-process vectors (for vectorized analysis)."""
        import numpy as np

        return {
            "state": np.array(self.state, dtype=np.uint8),
            "needs": np.array(self.needs, dtype=np.bool_),
            "depth": np.array(self.depth, dtype=np.int64),
            "status": np.array(self.status, dtype=np.uint8),
        }


class PackedCodec:
    """Bidirectional Configuration ↔ PackedState translation for NADiners.

    The codec owns every topology- and algorithm-derived constant the fast
    paths need (neighbour index lists, edge iteration order, domains for
    fault sampling, the threshold ``D`` and the depth cap), so engines and
    explorers share one source of truth.
    """

    def __init__(self, topology: Topology, algorithm: NADiners) -> None:
        if type(algorithm) is not NADiners:
            raise UnsupportedBackendError(
                f"fast backend supports NADiners only, not {algorithm!r}"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.pids: Tuple[Pid, ...] = topology.nodes
        self.n = len(self.pids)
        self.index: Dict[Pid, int] = {pid: i for i, pid in enumerate(self.pids)}
        #: Neighbour index tuples in adjacency order (the havoc target order).
        self.nbrs: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(self.index[q] for q in topology.neighbors(pid))
            for pid in self.pids
        )
        #: Neighbour bitset per process (for dirty marking / safety checks).
        self.nbr_mask: Tuple[int, ...] = tuple(
            sum(1 << q for q in row) for row in self.nbrs
        )
        #: Edges in ``topology.edges`` iteration order — the exact order
        #: ``System.randomize`` samples them in, which RNG parity requires.
        self.edge_order = []
        for e in topology.edges:
            i, j = (self.index[x] for x in tuple(e))
            self.edge_order.append((e, i, j, algorithm.edge_domain(topology, e)))
        self.local_domains = dict(algorithm.local_domains(topology))
        self._state_dom = self.local_domains[VAR_STATE]
        self._needs_dom = self.local_domains[VAR_NEEDS]
        self._depth_dom = self.local_domains[VAR_DEPTH]
        self.cap: Optional[int] = algorithm.depth_cap
        self.d_const: int = (
            algorithm.diameter_override
            if algorithm.diameter_override is not None
            else topology.diameter
        )

    # ------------------------------------------------------------ initial

    def initial_state(self, initially_dead: Iterable[Pid] = ()) -> PackedState:
        """The packed equivalent of ``System(topology, algorithm)``."""
        topo = self.topology
        algo = self.algorithm
        n = self.n
        state = [0] * n
        needs = [False] * n
        depth = [algo._initial_depth(pid, topo) for pid in self.pids]
        status = [ALIVE] * n
        anc = [0] * n
        desc = [0] * n
        for _e, i, j, _dom in self.edge_order:
            lo, hi = (i, j) if i < j else (j, i)
            anc[hi] |= 1 << lo  # earlier node-order endpoint is the ancestor
            desc[lo] |= 1 << hi
        for pid in initially_dead:
            if pid not in self.index:
                raise UnknownProcessError(pid)
            status[self.index[pid]] = DEAD
        return PackedState(state, needs, depth, status, anc, desc)

    # ------------------------------------------------------- pack / unpack

    def pack(self, config: Configuration) -> PackedState:
        """Encode an object-model configuration (validating as it goes)."""
        if config.topology.nodes != self.topology.nodes or (
            config.topology.edges != self.topology.edges
        ):
            raise UnknownProcessError("configuration topology mismatch")
        n = self.n
        state = [0] * n
        needs = [False] * n
        depth = [0] * n
        status = [ALIVE] * n
        anc = [0] * n
        desc = [0] * n
        for pid, p in self.index.items():
            values = config.locals_of(pid)
            state[p] = STATE_CODE[self._state_dom.validate(VAR_STATE, values[VAR_STATE])]
            needs[p] = self._needs_dom.validate(VAR_NEEDS, values[VAR_NEEDS])
            depth[p] = self._depth_dom.validate(VAR_DEPTH, values[VAR_DEPTH])
        for _e, i, j, dom in self.edge_order:
            value = dom.validate(f"edge {(self.pids[i], self.pids[j])!r}",
                                 config.edge_value(self.pids[i], self.pids[j]))
            a = i if value == self.pids[i] else j
            d = j if a == i else i
            anc[d] |= 1 << a
            desc[a] |= 1 << d
        for pid in config.dead:
            status[self.index[pid]] = DEAD
        for pid in config.malicious:
            status[self.index[pid]] = MALICIOUS
        return PackedState(state, needs, depth, status, anc, desc)

    def unpack(self, ps: PackedState) -> Configuration:
        """Decode back to the object model, preserving the object model's
        dict orders so serialized snapshots are byte-identical."""
        locals_: Dict[Pid, Dict[str, Any]] = {}
        for p, pid in enumerate(self.pids):
            locals_[pid] = {
                VAR_STATE: STATE_VALUES[ps.state[p]],
                VAR_NEEDS: ps.needs[p],
                VAR_DEPTH: ps.depth[p],
            }
        edges: Dict[Any, Any] = {}
        for e, i, j, _dom in self.edge_order:
            edges[e] = self.pids[i] if (ps.anc[j] >> i) & 1 else self.pids[j]
        return Configuration(
            self.topology,
            locals_,
            edges,
            dead=(pid for p, pid in enumerate(self.pids) if ps.status[p] == DEAD),
            malicious=(
                pid for p, pid in enumerate(self.pids) if ps.status[p] == MALICIOUS
            ),
        )

    # ---------------------------------------------------------------- keys

    def key(self, ps: PackedState) -> bytes:
        """A compact, collision-free ``bytes`` key for visited sets.

        Requires a depth cap ≤ 255 (the model checker always runs capped;
        ``depth_cap = D + 1``), so every field fits one byte per process
        plus one edge-orientation bit per edge.
        """
        if self.cap is None or self.cap > 255:
            raise UnsupportedBackendError(
                "packed keys need depth_cap <= 255 (run the checker capped)"
            )
        orient = 0
        for bit, (_e, i, j, _dom) in enumerate(self.edge_order):
            if (ps.anc[j] >> i) & 1:
                orient |= 1 << bit
        n_edge_bytes = (len(self.edge_order) + 7) // 8
        return (
            bytes(ps.state)
            + bytes(ps.needs)
            + bytes(ps.depth)
            + bytes(ps.status)
            + orient.to_bytes(n_edge_bytes, "little")
        )

    # -------------------------------------------------------------- safety

    def neighbors_eating(self, ps: PackedState) -> bool:
        """True when two neighbouring processes are both in state E —
        the safety violation every reachability sweep watches for."""
        e_mask = 0
        for p, s in enumerate(ps.state):
            if s == 2:
                e_mask |= 1 << p
        m = e_mask
        while m:
            p = (m & -m).bit_length() - 1
            m &= m - 1
            if e_mask & self.nbr_mask[p]:
                return True
        return False
