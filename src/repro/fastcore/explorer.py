"""The fast transition relation: successors and reachability over packed
state.

Mirrors :class:`repro.verification.explorer.TransitionSystem` — same enabled
order (pid-major, action declaration order), same successor set, same
``max_states`` guard — but computes over :class:`~repro.fastcore.packed`
encodings: guards via :func:`~repro.fastcore.packed.enabled_bits`, commands
via :func:`~repro.fastcore.packed.apply_action`, and visited sets keyed by
the codec's compact ``bytes`` key instead of hashing object configurations.
The decoded :meth:`successors` output is asserted identical to the object
model's in the parity battery; :meth:`reachable_stats` is what the CLI's
``check --backend fast`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

from ..sim.configuration import Configuration
from ..sim.errors import SimulationError
from ..sim.topology import Topology
from ..verification.explorer import Transition
from .packed import (
    ACTION_NAMES,
    PackedCodec,
    PackedState,
    apply_action,
    enabled_bits,
)

Source = Union[Configuration, PackedState]


@dataclass(frozen=True)
class FastReachability:
    """Outcome of a packed BFS sweep.

    ``states`` matches ``len(TransitionSystem.reachable_from(sources))``
    exactly (the CI smoke job cmp's the two); ``violations`` counts visited
    states where two neighbours eat simultaneously.
    """

    states: int
    transitions: int
    violations: int


class FastTransitionSystem:
    """Successor computation over packed states.

    Constructed like the object :class:`TransitionSystem` —
    ``FastTransitionSystem(algorithm, topology)`` — so call sites can switch
    backends by swapping the class.
    """

    def __init__(self, algorithm, topology: Topology) -> None:
        self.algorithm = algorithm
        self.topology = topology
        self.codec = PackedCodec(topology, algorithm)

    # -------------------------------------------------------- packed layer

    def _masks(self, ps: PackedState) -> Tuple[int, int]:
        nonT = 0
        e_mask = 0
        for p, s in enumerate(ps.state):
            if s:
                nonT |= 1 << p
                if s == 2:
                    e_mask |= 1 << p
        return nonT, e_mask

    def enabled_packed(self, ps: PackedState) -> List[Tuple[int, int]]:
        """Enabled ``(process index, action index)`` pairs, pid-major and in
        action declaration order — the object model's ``all_enabled`` order."""
        codec = self.codec
        nonT, e_mask = self._masks(ps)
        state, needs, depth, status = ps.state, ps.needs, ps.depth, ps.status
        anc, desc = ps.anc, ps.desc
        d_const, cap = codec.d_const, codec.cap
        out: List[Tuple[int, int]] = []
        for p in range(codec.n):
            bits = enabled_bits(
                p, state, needs, depth, status, anc, desc, nonT, e_mask, d_const, cap
            )
            while bits:
                b = bits & -bits
                bits ^= b
                out.append((p, b.bit_length() - 1))
        return out

    def successors_packed(
        self, ps: PackedState
    ) -> List[Tuple[int, int, PackedState]]:
        """All one-step successors as ``(p, a, packed target)`` triples."""
        codec = self.codec
        nbrs = codec.nbrs
        cap = codec.cap
        out: List[Tuple[int, int, PackedState]] = []
        for p, a in self.enabled_packed(ps):
            target = ps.copy()
            apply_action(target, p, a, nbrs[p], cap)
            out.append((p, a, target))
        return out

    # -------------------------------------------------------- object layer

    def _pack(self, source: Source) -> PackedState:
        if isinstance(source, PackedState):
            return source
        return self.codec.pack(source)

    def enabled(self, config: Source) -> List[Tuple[object, str]]:
        """Decoded mirror of ``TransitionSystem.enabled``."""
        pids = self.codec.pids
        return [
            (pids[p], ACTION_NAMES[a])
            for p, a in self.enabled_packed(self._pack(config))
        ]

    def successors(self, config: Source) -> List[Transition]:
        """Decoded mirror of ``TransitionSystem.successors``."""
        codec = self.codec
        return [
            Transition(codec.pids[p], ACTION_NAMES[a], codec.unpack(target))
            for p, a, target in self.successors_packed(self._pack(config))
        ]

    # ------------------------------------------------------- reachability

    def reachable_stats(
        self,
        sources: Iterable[Source],
        *,
        max_states: int = 1_000_000,
    ) -> FastReachability:
        """BFS closure of ``sources``, counting instead of materializing.

        The visited set holds compact ``bytes`` keys (one byte per process
        field plus one bit per edge), so sweeps that would exhaust memory as
        object graphs fit comfortably.  Raises :class:`SimulationError` past
        ``max_states``, like the object explorer.
        """
        codec = self.codec
        key = codec.key
        visited: Dict[bytes, None] = {}
        frontier: List[PackedState] = []
        for source in sources:
            ps = self._pack(source)
            k = key(ps)
            if k not in visited:
                visited[k] = None
                frontier.append(ps)
        transitions = 0
        violations = 0
        cursor = 0
        while cursor < len(frontier):
            ps = frontier[cursor]
            cursor += 1
            if codec.neighbors_eating(ps):
                violations += 1
            for _p, _a, target in self.successors_packed(ps):
                transitions += 1
                k = key(target)
                if k not in visited:
                    if len(visited) >= max_states:
                        raise SimulationError(
                            f"state space exceeds max_states={max_states}"
                        )
                    visited[k] = None
                    frontier.append(target)
        return FastReachability(
            states=len(visited), transitions=transitions, violations=violations
        )
