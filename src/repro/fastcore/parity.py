"""The parity harness: co-run both backends and refuse any divergence.

The fast core's whole claim is "same computation, faster".  This module
makes that claim checkable: :func:`co_run` drives an object-model
:class:`~repro.sim.engine.Engine` and a :class:`~repro.fastcore.FastEngine`
over the same topology, algorithm, daemon, hunger policy, fault plan, and
seed — stepping them in lockstep and comparing, at every step,

* the full decoded configuration (locals, edges, dead/malicious sets),
* the emitted :class:`~repro.sim.trace.TraceEvent` streams (equality on the
  frozen dataclass covers step, kind, pid, detail, and — because payloads
  are captured pre-action — the acting process's locals),
* the final :class:`~repro.sim.engine.RunResult` shape and action counts.

Any mismatch raises :class:`ParityError` carrying the first divergent step
and a field-level diff, which is the error you want in CI: not "some hash
differed", but "at step 411, edge {2, 3} points at 3 in the object model
and 2 in the fast one".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..sim.configuration import Configuration
from ..sim.engine import Engine
from ..sim.errors import SimulationError
from ..sim.network import System
from ..sim.topology import Topology
from ..sim.trace import TraceEvent, TraceRecorder
from .engine import FastEngine


class ParityError(SimulationError):
    """The two backends diverged; the message localizes where and how."""


@dataclass(frozen=True)
class ParityReport:
    """Outcome of one successful lockstep co-run."""

    steps: int
    quiescent: bool
    events: Tuple[TraceEvent, ...]
    final: Configuration


def _diff_configurations(
    step: int, obj: Configuration, fast: Configuration
) -> str:
    lines = [f"configurations diverged at step {step}:"]
    for pid in obj.topology.nodes:
        a, b = obj.locals_of(pid), fast.locals_of(pid)
        if a != b:
            lines.append(f"  locals {pid!r}: object {a} != fast {b}")
    for e in obj.topology.edges:
        x, y = tuple(e)
        a, b = obj.edge_value(x, y), fast.edge_value(x, y)
        if a != b:
            lines.append(f"  edge {set(e)!r}: object {a!r} != fast {b!r}")
    if obj.dead != fast.dead:
        lines.append(f"  dead: object {obj.dead!r} != fast {fast.dead!r}")
    if obj.malicious != fast.malicious:
        lines.append(
            f"  malicious: object {obj.malicious!r} != fast {fast.malicious!r}"
        )
    return "\n".join(lines)


def co_run(
    topology: Topology,
    algorithm_factory: Callable[[], object],
    *,
    steps: int,
    seed: int = 0,
    daemon_factory: Optional[Callable[[], object]] = None,
    hunger_factory: Optional[Callable[[], object]] = None,
    faults_factory: Optional[Callable[[], object]] = None,
    record_events: bool = True,
) -> ParityReport:
    """Run both backends in lockstep for up to ``steps`` steps.

    Factories (not instances) are required for everything stateful — each
    backend must get its own algorithm, daemon ledger, hunger policy, and
    fault plan, seeded identically, or the comparison would be contaminated
    by shared mutable state.  Returns a :class:`ParityReport` on success and
    raises :class:`ParityError` at the first divergence.
    """
    obj_recorder = TraceRecorder() if record_events else None
    fast_recorder = TraceRecorder() if record_events else None

    system = System(topology, algorithm_factory())
    obj = Engine(
        system,
        daemon_factory() if daemon_factory else None,
        hunger=hunger_factory() if hunger_factory else None,
        faults=faults_factory() if faults_factory else None,
        recorder=obj_recorder,
        seed=seed,
    )
    fast = FastEngine(
        topology,
        algorithm_factory(),
        daemon_factory() if daemon_factory else None,
        hunger=hunger_factory() if hunger_factory else None,
        faults=faults_factory() if faults_factory else None,
        recorder=fast_recorder,
        seed=seed,
    )

    initial_obj, initial_fast = system.snapshot(), fast.snapshot()
    if initial_obj != initial_fast:
        raise ParityError(_diff_configurations(-1, initial_obj, initial_fast))

    quiescent = False
    taken = 0
    for _ in range(steps):
        progressed_obj = obj.step()
        progressed_fast = fast.step()
        if progressed_obj != progressed_fast:
            raise ParityError(
                f"step {taken}: object progressed={progressed_obj}, "
                f"fast progressed={progressed_fast}"
            )
        if not progressed_obj:
            quiescent = True
            break
        snap_obj, snap_fast = system.snapshot(), fast.snapshot()
        if snap_obj != snap_fast:
            raise ParityError(_diff_configurations(taken, snap_obj, snap_fast))
        taken += 1

    if obj.action_counts != fast.action_counts:
        raise ParityError(
            "action counts diverged: "
            f"object {dict(obj.action_counts)!r} != fast {dict(fast.action_counts)!r}"
        )
    if record_events:
        a, b = obj_recorder.events, fast_recorder.events
        if a != b:
            index = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y), min(len(a), len(b))
            )
            xa = a[index] if index < len(a) else "<missing>"
            xb = b[index] if index < len(b) else "<missing>"
            raise ParityError(
                f"trace events diverged at event {index}: object {xa!r} != fast {xb!r}"
            )
        events: Tuple[TraceEvent, ...] = a
    else:
        events = ()

    final_obj, final_fast = system.snapshot(), fast.snapshot()
    if final_obj != final_fast:
        raise ParityError(_diff_configurations(taken, final_obj, final_fast))
    return ParityReport(
        steps=taken, quiescent=quiescent, events=events, final=final_obj
    )


def co_run_results(
    topology: Topology,
    algorithm_factory: Callable[[], object],
    *,
    max_steps: int,
    seed: int = 0,
    daemon_factory: Optional[Callable[[], object]] = None,
    hunger_factory: Optional[Callable[[], object]] = None,
    faults_factory: Optional[Callable[[], object]] = None,
):
    """Whole-run comparison: both backends' ``run()`` results must match.

    Complements :func:`co_run` (which steps manually and never exercises
    the run loop's quiescence/stop accounting): returns the two
    :class:`~repro.sim.engine.RunResult` objects after asserting they agree
    on steps, termination flags, and final configuration.
    """
    system = System(topology, algorithm_factory())
    obj = Engine(
        system,
        daemon_factory() if daemon_factory else None,
        hunger=hunger_factory() if hunger_factory else None,
        faults=faults_factory() if faults_factory else None,
        seed=seed,
    )
    fast = FastEngine(
        topology,
        algorithm_factory(),
        daemon_factory() if daemon_factory else None,
        hunger=hunger_factory() if hunger_factory else None,
        faults=faults_factory() if faults_factory else None,
        seed=seed,
    )
    result_obj = obj.run(max_steps)
    result_fast = fast.run(max_steps)
    if (
        result_obj.steps != result_fast.steps
        or result_obj.quiescent != result_fast.quiescent
        or result_obj.stopped != result_fast.stopped
        or result_obj.exhausted != result_fast.exhausted
    ):
        raise ParityError(
            f"run results diverged: object {result_obj!r} != fast {result_fast!r}"
        )
    if result_obj.final != result_fast.final:
        raise ParityError(
            _diff_configurations(result_obj.steps, result_obj.final, result_fast.final)
        )
    return result_obj, result_fast
