"""repro — Dining Philosophers that Tolerate Malicious Crashes.

A complete reproduction of Nesterenko & Arora (ICDCS 2002):

* :mod:`repro.sim` — guarded-command shared-memory simulation kernel with
  weakly fair daemons and a malicious-crash / transient-fault model;
* :mod:`repro.core` — the paper's stabilizing, failure-locality-2 diners
  program, its invariant predicates, and ablation variants;
* :mod:`repro.baselines` — prior diners algorithms the paper compares
  against (Chandy–Misra hygienic, Choy–Singh dynamic threshold, naive
  fork ordering);
* :mod:`repro.mp` — the §4 message-passing transformation (Dijkstra K-state
  handshake);
* :mod:`repro.analysis` — failure locality, stabilization time, throughput
  and fairness measurement;
* :mod:`repro.verification` — an explicit-state model checker validating the
  paper's lemmas exhaustively on small instances.
"""

from . import analysis, baselines, core, lowatom, mp, sim, verification

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "lowatom",
    "mp",
    "sim",
    "verification",
    "__version__",
]
