"""repro — Dining Philosophers that Tolerate Malicious Crashes.

A complete reproduction of Nesterenko & Arora (ICDCS 2002):

* :mod:`repro.sim` — guarded-command shared-memory simulation kernel with
  weakly fair daemons and a malicious-crash / transient-fault model;
* :mod:`repro.core` — the paper's stabilizing, failure-locality-2 diners
  program, its invariant predicates, and ablation variants;
* :mod:`repro.baselines` — prior diners algorithms the paper compares
  against (Chandy–Misra hygienic, Choy–Singh dynamic threshold, naive
  fork ordering);
* :mod:`repro.mp` — the §4 message-passing transformation (Dijkstra K-state
  handshake);
* :mod:`repro.analysis` — failure locality, stabilization time, throughput
  and fairness measurement;
* :mod:`repro.verification` — an explicit-state model checker validating the
  paper's lemmas exhaustively on small instances;
* :mod:`repro.net` — the live cluster runtime: the §4 processes over real
  asyncio TCP with a chaos proxy layer and a lock-service client API.
"""

from . import analysis, baselines, core, lowatom, mp, net, sim, verification

__version__ = "1.0.0"


def version() -> str:
    """The installed package version, from distribution metadata.

    Falls back to the hard-coded ``__version__`` when the package runs
    straight off a source tree (``PYTHONPATH=src``) without being
    installed.  ``repro --version`` and every cluster/soak artefact header
    use this single source.
    """
    try:
        from importlib.metadata import PackageNotFoundError, metadata

        return metadata("repro")["Version"]
    except PackageNotFoundError:
        return __version__
    except Exception:  # pragma: no cover - metadata backend quirks
        return __version__


__all__ = [
    "analysis",
    "baselines",
    "core",
    "lowatom",
    "mp",
    "net",
    "sim",
    "verification",
    "version",
    "__version__",
]
