"""Coverage-guided chaos-schedule fuzzing (`repro fuzz`).

The fuzzer searches the space of :class:`~repro.net.chaos.ChaosSchedule`
for plans that push the protocol into *novel* behaviour, not merely bad
behaviour: each candidate is executed and reduced to a small integer
**signature** (waiting-chain shape, exclusion-overlap trajectory,
starvation and convergence buckets, channel-loss bucket), and a schedule
joins the corpus exactly when its signature has not been seen before.
Mutation parents are drawn score-weighted from the corpus, so the loop
climbs toward worst cases while the signature map keeps it exploring.

Execution is on the **deterministic message-passing engine**, not the live
cluster: scheduled wall-clock times map to engine steps (``at_s / duration
× steps``), link profiles become channel loss, partitions toggle loss to
1, malicious crashes/restarts/byzantine subversions use the engine's fault
repertoire.  Two consequences, both deliberate:

* ``repro fuzz --seed S --budget N`` is *bit-for-bit reproducible* —
  same corpus, byte-identical schedule files — because nothing in the
  evaluation path reads a clock or a socket (sharded workers via
  :func:`~repro.campaign.runner.parallel_map` preserve order, so ``--jobs``
  does not change the result either);
* the committed corpus is scored by the simulator but *replayed* against
  the live cluster (``repro cluster soak --schedule-file``), so CI checks
  the finds against real sockets, where the safety bar (zero
  neighbour-exclusion violations among non-faulty nodes) must still hold.

The worst ``keep`` finds are greedily minimised (drop events/profiles
while the signature is preserved) before being written, so corpus entries
stay reviewable.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..campaign.runner import parallel_map
from ..core.state import DinerState
from ..mp.channel import Channel
from ..mp.diners_mp import build_diners, neighbours_both_eating
from ..mp.engine import MpEngine
from ..net.chaos import (
    ChaosSchedule,
    FaultEvent,
    Link,
    LinkProfile,
    build_schedule,
    validate_schedule,
)
from ..sim.topology import Pid, Topology, from_spec
from .byzantine import ByzantineDinerProcess
from .corpus import schedule_from_doc, schedule_to_doc, write_schedule

__all__ = [
    "FuzzLimits",
    "FuzzResult",
    "CorpusEntry",
    "evaluate_schedule",
    "EvalOutcome",
    "minimise_schedule",
    "mutate_schedule",
    "run_fuzz",
]

H = DinerState.HUNGRY.value


@dataclass(frozen=True)
class FuzzLimits:
    """Fixed evaluation parameters; part of a corpus entry's provenance."""

    steps: int = 4000  #: engine steps per candidate run
    sample_every: int = 25  #: steps between behaviour samples
    eat_ticks: int = 2
    channel_capacity: int = 8


@dataclass(frozen=True)
class EvalOutcome:
    """What one candidate execution reduces to."""

    signature: Tuple[int, ...]
    score: float
    metrics: Dict[str, Any]


@dataclass
class CorpusEntry:
    schedule: ChaosSchedule
    signature: Tuple[int, ...]
    score: float
    metrics: Dict[str, Any]
    origin: str  #: ``seed:<i>`` or ``mutant:<i>``


@dataclass
class FuzzResult:
    topology_spec: str
    seed: int
    budget: int
    executed: int
    entries: List[CorpusEntry] = field(default_factory=list)
    written: List[Path] = field(default_factory=list)

    @property
    def coverage(self) -> int:
        return len(self.entries)

    @property
    def best(self) -> Optional[CorpusEntry]:
        return max(self.entries, key=lambda e: e.score, default=None)


def _bucket(value: int) -> int:
    """Log₂ bucketing: collapses magnitudes so signatures stay coarse."""
    return int(value).bit_length()


def evaluate_schedule(
    schedule: ChaosSchedule,
    topology: Topology,
    *,
    limits: FuzzLimits = FuzzLimits(),
) -> EvalOutcome:
    """Run one schedule on the deterministic engine; reduce to a signature.

    Overlap samples are split three ways: pairs touching a *byzantine*
    node (expected — that is the demonstrated boundary), pairs touching a
    currently-faulty node, and **clean** pairs, further split into the
    stabilization window (before/shortly after faults) versus **late**
    (after every scheduled event) — late clean overlap is the metric a
    genuine safety find would move, and dominates the score.
    """
    procs = build_diners(
        topology,
        eat_ticks=limits.eat_ticks,
        seed=schedule.seed,
        repair=True,
    )
    profiles = dict(schedule.profiles)

    def factory(src, dst, capacity, *, loss_probability=0.0, rng=None):
        prof = profiles.get((src, dst))
        loss = loss_probability
        if prof is not None:
            loss = min(0.9, prof.drop_p + prof.reorder_p * 0.25)
        return Channel(src, dst, capacity, loss_probability=loss, rng=rng)

    engine = MpEngine(
        topology,
        procs,
        channel_capacity=limits.channel_capacity,
        seed=schedule.seed ^ 0xF0221,
        channel_factory=factory,
    )
    steps = limits.steps
    duration = schedule.duration_s

    def step_of(at_s: float) -> int:
        return max(0, min(steps, int(at_s / duration * steps)))

    plan = sorted(
        ((step_of(e.at_s), i, e) for i, e in enumerate(schedule.events)),
        key=lambda item: (item[0], item[1]),
    )
    last_event_step = plan[-1][0] if plan else 0
    restart_rng = random.Random(schedule.seed ^ 0x5E57A27)
    saved_loss: Dict[Link, float] = {}
    faulty: Set[Pid] = set()
    byzantine: Set[Pid] = set()

    def apply(event: FaultEvent) -> None:
        node = event.node
        if event.kind == "partition":
            for link in event.links:
                channel = engine.channel(*link)
                if link not in saved_loss:
                    saved_loss[link] = channel.loss_probability
                channel.loss_probability = 1.0
        elif event.kind == "heal":
            for link in event.links:
                engine.channel(*link).loss_probability = saved_loss.pop(
                    link, 0.0
                )
        elif event.kind == "malicious-crash":
            if node is not None and engine.is_alive(node):
                engine.crash_maliciously(
                    node, havoc_steps=2 + 2 * len(event.links)
                )
                faulty.add(node)
        elif event.kind == "restart":
            if node is not None and not engine.is_alive(node):
                engine.restart(node, rng=restart_rng)
                faulty.discard(node)
        elif event.kind == "byzantine-crash":
            if node is not None and engine.is_alive(node):
                engine.processes[node] = ByzantineDinerProcess(
                    node,
                    topology,
                    repair=True,
                    counter_floor=dict(procs[node].edge_c),
                    seed=schedule.seed,
                )
                byzantine.add(node)
        # ``replay`` has no engine analogue (channels are exactly-once
        # FIFO); it is a live-cluster actuator and scores as a no-op here.

    max_hungry_component = 0
    clean_overlap = late_clean_overlap = faulty_overlap = byz_overlap = 0
    samples = 0

    def live_clean(p: Pid) -> bool:
        return engine.is_alive(p) and p not in faulty and p not in byzantine

    def sample(at_step: int) -> None:
        nonlocal max_hungry_component, clean_overlap, late_clean_overlap
        nonlocal faulty_overlap, byz_overlap, samples
        samples += 1
        hungry = {
            p for p in topology.nodes if live_clean(p) and procs[p].state == H
        }
        seen: Set[Pid] = set()
        for start in hungry:
            if start in seen:
                continue
            stack, size = [start], 0
            seen.add(start)
            while stack:
                node = stack.pop()
                size += 1
                for q in topology.neighbors(node):
                    if q in hungry and q not in seen:
                        seen.add(q)
                        stack.append(q)
            max_hungry_component = max(max_hungry_component, size)
        for p, q in neighbours_both_eating(topology, engine.processes):
            if p in byzantine or q in byzantine:
                byz_overlap += 1
            elif not (live_clean(p) and live_clean(q)):
                faulty_overlap += 1
            else:
                clean_overlap += 1
                if at_step > last_event_step:
                    late_clean_overlap += 1

    cursor = 0
    taken = 0
    while taken < steps:
        while cursor < len(plan) and plan[cursor][0] <= taken:
            apply(plan[cursor][2])
            cursor += 1
        engine.step()
        taken += 1
        if taken % limits.sample_every == 0:
            sample(taken)
    while cursor < len(plan):  # events scheduled at the final step
        apply(plan[cursor][2])
        cursor += 1
    sample(steps)

    eaters = [
        procs[p].eats for p in topology.nodes if live_clean(p)
    ]
    starved = sum(1 for eats in eaters if eats == 0)
    min_eats = min(eaters, default=0)
    drops = sum(c.dropped + c.lost for c in engine.channels())
    signature = (
        max_hungry_component,
        _bucket(clean_overlap),
        _bucket(late_clean_overlap),
        _bucket(byz_overlap),
        starved,
        _bucket(min_eats),
        _bucket(drops),
    )
    score = (
        400.0 * late_clean_overlap
        + 120.0 * clean_overlap
        + 25.0 * starved
        + 8.0 * max_hungry_component
        + 2.0 * _bucket(byz_overlap)
        + 1.0 * _bucket(faulty_overlap)
        + 1.0 * _bucket(drops)
    )
    metrics = {
        "max_hungry_component": max_hungry_component,
        "clean_overlap_samples": clean_overlap,
        "late_clean_overlap_samples": late_clean_overlap,
        "faulty_overlap_samples": faulty_overlap,
        "byzantine_overlap_samples": byz_overlap,
        "starved": starved,
        "min_eats": min_eats,
        "dropped_messages": drops,
        "samples": samples,
        "engine_steps": engine.step_count,
    }
    return EvalOutcome(signature=signature, score=score, metrics=metrics)


# ----------------------------------------------------------------- mutation


def _repair(schedule: ChaosSchedule) -> ChaosSchedule:
    """Restore structural sanity after a mutation: chronological order,
    no restart without its prior crash (orphans are dropped, the exact
    condition :func:`~repro.net.chaos.validate_schedule` rejects)."""
    events = sorted(schedule.events, key=lambda e: e.at_s)
    crashed: Dict[Pid, float] = {}
    kept: List[FaultEvent] = []
    for event in events:
        if event.kind == "restart":
            when = crashed.get(event.node)
            if when is None or when > event.at_s:
                continue
        if event.kind == "malicious-crash":
            crashed[event.node] = event.at_s
        kept.append(event)
    return replace(schedule, events=tuple(kept))


def _random_garbage(rng: random.Random, links: Sequence[Link]) -> Tuple[bytes, ...]:
    return tuple(
        bytes(rng.randrange(256) for _ in range(rng.randint(8, 64)))
        for _ in links
    )


def _out_links(topology: Topology, node: Pid) -> Tuple[Link, ...]:
    return tuple(sorted(((node, q) for q in topology.neighbors(node)), key=repr))


def mutate_schedule(
    schedule: ChaosSchedule, topology: Topology, rng: random.Random
) -> ChaosSchedule:
    """One seeded mutation; always returns a valid schedule.

    Operators: time-jitter an event, delete an event, add a partition
    window, add a malicious crash (sometimes paired with a restart), and
    perturb/toggle a link profile.  A mutation that cannot apply (e.g.
    delete on an empty plan) falls through to the next attempt; after a
    few dead ends the schedule returns unchanged.
    """
    duration = schedule.duration_s
    nodes = sorted(topology.nodes, key=repr)
    links = sorted(
        ((p, q) for p in topology.nodes for q in topology.neighbors(p)),
        key=repr,
    )

    def jitter() -> Optional[ChaosSchedule]:
        if not schedule.events:
            return None
        idx = rng.randrange(len(schedule.events))
        events = list(schedule.events)
        moved = round(
            min(
                duration,
                max(0.0, events[idx].at_s + rng.uniform(-0.15, 0.15) * duration),
            ),
            6,
        )
        events[idx] = replace(events[idx], at_s=moved)
        return replace(schedule, events=tuple(events))

    def drop_event() -> Optional[ChaosSchedule]:
        if not schedule.events:
            return None
        idx = rng.randrange(len(schedule.events))
        events = tuple(
            e for i, e in enumerate(schedule.events) if i != idx
        )
        return replace(schedule, events=events)

    def add_partition() -> Optional[ChaosSchedule]:
        if len(nodes) < 2:
            return None
        side = set(rng.sample(nodes, rng.randint(1, len(nodes) - 1)))
        cut = tuple(
            (p, q) for (p, q) in links if (p in side) != (q in side)
        )
        if not cut:
            return None
        start = round(rng.uniform(0.05, 0.8) * duration, 6)
        heal = round(
            min(start + rng.uniform(0.05, 0.3) * duration, duration), 6
        )
        events = schedule.events + (
            FaultEvent(at_s=start, kind="partition", links=cut),
            FaultEvent(at_s=heal, kind="heal", links=cut),
        )
        return replace(schedule, events=events)

    def add_crash() -> Optional[ChaosSchedule]:
        already = {
            e.node
            for e in schedule.events
            if e.kind in ("malicious-crash", "byzantine-crash")
        }
        candidates = [n for n in nodes if n not in already]
        if not candidates:
            return None
        node = candidates[rng.randrange(len(candidates))]
        out = _out_links(topology, node)
        crash_at = round(rng.uniform(0.2, 0.85) * duration, 6)
        added = [
            FaultEvent(
                at_s=crash_at,
                kind="malicious-crash",
                links=out,
                node=node,
                garbage=_random_garbage(rng, out),
            )
        ]
        if rng.random() < 0.5:
            added.append(
                FaultEvent(
                    at_s=round(
                        min(crash_at + rng.uniform(0.1, 0.3) * duration, duration),
                        6,
                    ),
                    kind="restart",
                    links=out,
                    node=node,
                )
            )
        return replace(schedule, events=schedule.events + tuple(added))

    def toggle_profile() -> Optional[ChaosSchedule]:
        profiles = dict(schedule.profiles)
        link = links[rng.randrange(len(links))]
        if link in profiles and rng.random() < 0.3:
            del profiles[link]
        else:
            profiles[link] = LinkProfile(
                delay_s=round(rng.uniform(0.0, 0.01), 6),
                jitter_s=round(rng.uniform(0.0, 0.01), 6),
                drop_p=round(rng.uniform(0.0, 0.08), 6),
                dup_p=round(rng.uniform(0.0, 0.05), 6),
                reorder_p=round(rng.uniform(0.0, 0.15), 6),
            )
        return replace(schedule, profiles=profiles)

    operators = (jitter, drop_event, add_partition, add_crash, toggle_profile)
    for _ in range(8):
        mutated = operators[rng.randrange(len(operators))]()
        if mutated is None:
            continue
        repaired = _repair(mutated)
        try:
            validate_schedule(repaired)
        except ValueError:
            continue
        return repaired
    return schedule


# ------------------------------------------------------------ minimisation


def minimise_schedule(
    schedule: ChaosSchedule,
    topology: Topology,
    signature: Tuple[int, ...],
    *,
    limits: FuzzLimits = FuzzLimits(),
    budget: int = 24,
) -> Tuple[ChaosSchedule, int]:
    """Greedy shrink preserving the behaviour signature.

    Repeatedly tries dropping one event (latest first), then one link
    profile, re-evaluating each trial; a drop survives when the signature
    is unchanged.  Returns ``(smaller_schedule, evaluations_used)``.
    """
    current = schedule
    evals = 0
    shrunk = True
    while shrunk and evals < budget:
        shrunk = False
        for idx in range(len(current.events) - 1, -1, -1):
            if evals >= budget:
                break
            trial = _repair(
                replace(
                    current,
                    events=tuple(
                        e for i, e in enumerate(current.events) if i != idx
                    ),
                )
            )
            if len(trial.events) == len(current.events):
                continue
            evals += 1
            outcome = evaluate_schedule(trial, topology, limits=limits)
            if outcome.signature == signature:
                current = trial
                shrunk = True
                break
    for link in sorted(current.profiles, key=repr):
        if evals >= budget:
            break
        trial = replace(
            current,
            profiles={
                k: v for k, v in current.profiles.items() if k != link
            },
        )
        evals += 1
        if evaluate_schedule(trial, topology, limits=limits).signature == signature:
            current = trial
    return current, evals


# -------------------------------------------------------------- the loop


def _evaluate_shard(arg: Tuple[Dict[str, Any], Dict[str, Any]]) -> Dict[str, Any]:
    """Worker-side evaluation (module-level so it pickles for the pool)."""
    doc, limit_fields = arg
    parsed = schedule_from_doc(doc)
    outcome = evaluate_schedule(
        parsed.schedule, parsed.topology, limits=FuzzLimits(**limit_fields)
    )
    return {
        "signature": list(outcome.signature),
        "score": outcome.score,
        "metrics": outcome.metrics,
    }


#: Seed-corpus shapes: enough diversity that mutation starts from
#: partition-heavy, crash-heavy, and quiet plans alike.
_SEED_PARAMS: Tuple[Dict[str, Any], ...] = (
    dict(partitions=1, malicious_crashes=1, restarts=1, flaky_links=0.5),
    dict(partitions=0, malicious_crashes=1, restarts=0, flaky_links=0.3),
    dict(partitions=2, malicious_crashes=0, restarts=0, flaky_links=0.7),
    dict(partitions=1, malicious_crashes=2, restarts=1, flaky_links=0.4),
)


def run_fuzz(
    topology_spec: str,
    *,
    seed: int = 0,
    budget: int = 40,
    duration_s: float = 5.0,
    jobs: int = 1,
    keep: int = 3,
    corpus_dir: Optional[Path | str] = None,
    limits: FuzzLimits = FuzzLimits(),
    byzantine: bool = False,
    minimise_budget: int = 24,
    progress=None,
) -> FuzzResult:
    """The coverage-guided loop; deterministic for ``(all arguments)``.

    ``budget`` counts candidate executions (seeds included; minimisation
    runs are separate and bounded by ``minimise_budget`` per kept entry).
    With ``corpus_dir`` set, the ``keep`` highest-scoring distinct
    signatures are minimised and written as canonical schedule files named
    ``<topo>-s<seed>-r<rank>.json`` — byte-identical across reruns.

    ``byzantine=True`` adds a beyond-the-model seed schedule; such
    entries *will* violate neighbour exclusion at the subverted node on
    live replay, so the committed CI corpus is built without it.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    topology = from_spec(topology_spec)
    rng = random.Random(seed ^ 0xF0222)
    say = progress if progress is not None else (lambda msg: None)
    limit_fields = asdict(limits)

    executed = 0
    coverage: Dict[Tuple[int, ...], CorpusEntry] = {}

    def evaluate_batch(schedules: Sequence[ChaosSchedule]) -> List[EvalOutcome]:
        nonlocal executed
        shards = [
            (schedule_to_doc(s, topology_spec=topology_spec), limit_fields)
            for s in schedules
        ]
        rows = parallel_map(_evaluate_shard, shards, jobs=jobs)
        executed += len(rows)
        return [
            EvalOutcome(tuple(r["signature"]), r["score"], r["metrics"])
            for r in rows
        ]

    def consider(
        schedule: ChaosSchedule, outcome: EvalOutcome, origin: str
    ) -> bool:
        entry = CorpusEntry(
            schedule=schedule,
            signature=outcome.signature,
            score=outcome.score,
            metrics=outcome.metrics,
            origin=origin,
        )
        existing = coverage.get(outcome.signature)
        if existing is None:
            coverage[outcome.signature] = entry
            return True
        if outcome.score > existing.score:
            coverage[outcome.signature] = entry
        return False

    seed_params = list(_SEED_PARAMS)
    if byzantine:
        seed_params.append(
            dict(
                partitions=1,
                malicious_crashes=0,
                restarts=0,
                byzantine=1,
                flaky_links=0.4,
            )
        )
    seeds = [
        build_schedule(
            topology, seed=seed * 1000 + i, duration_s=duration_s, **params
        )
        for i, params in enumerate(seed_params)
    ]
    for i, (schedule, outcome) in enumerate(zip(seeds, evaluate_batch(seeds))):
        consider(schedule, outcome, f"seed:{i}")
    say(
        f"fuzz: seeded {len(seeds)} schedules, "
        f"{len(coverage)} signatures"
    )

    def pick_parent() -> CorpusEntry:
        entries = [coverage[sig] for sig in sorted(coverage)]
        weights = [e.score + 1.0 for e in entries]
        return rng.choices(entries, weights=weights, k=1)[0]

    round_no = 0
    while executed < budget:
        # Fixed batch size: ``jobs`` only parallelises within a batch, so
        # the mutation stream (and therefore the corpus) is jobs-invariant.
        batch_size = min(8, budget - executed)
        parents = [pick_parent() for _ in range(batch_size)]
        mutants = [
            mutate_schedule(parent.schedule, topology, rng)
            for parent in parents
        ]
        outcomes = evaluate_batch(mutants)
        fresh = sum(
            consider(m, o, f"mutant:{executed - batch_size + i}")
            for i, (m, o) in enumerate(zip(mutants, outcomes))
        )
        round_no += 1
        say(
            f"fuzz: round {round_no}, {executed}/{budget} runs, "
            f"{len(coverage)} signatures (+{fresh})"
        )

    result = FuzzResult(
        topology_spec=topology_spec,
        seed=seed,
        budget=budget,
        executed=executed,
    )
    ranked = sorted(
        coverage.values(), key=lambda e: (-e.score, e.signature)
    )
    top = ranked[: max(0, keep)]
    for rank, entry in enumerate(top):
        minimised, used = minimise_schedule(
            entry.schedule,
            topology,
            entry.signature,
            limits=limits,
            budget=minimise_budget,
        )
        entry.schedule = minimised
        say(
            f"fuzz: minimised rank {rank} to "
            f"{len(minimised.events)} events ({used} evals)"
        )
    result.entries = ranked

    if corpus_dir is not None:
        slug = topology_spec.replace(":", "")
        for rank, entry in enumerate(top):
            meta = {
                "signature": list(entry.signature),
                "score": entry.score,
                "metrics": entry.metrics,
                "fuzz": {
                    "tool_seed": seed,
                    "budget": budget,
                    "executed": executed,
                    "rank": rank,
                    "origin": entry.origin,
                    "limits": limit_fields,
                },
            }
            path = Path(corpus_dir) / f"{slug}-s{seed}-r{rank}.json"
            result.written.append(
                write_schedule(
                    path,
                    entry.schedule,
                    topology_spec=topology_spec,
                    meta=meta,
                )
            )
    return result
