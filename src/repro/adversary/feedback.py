"""The adaptive live-cluster adversary: a chaos controller with eyes.

:class:`~repro.net.chaos.ChaosController` plays a fault plan fixed before
the run.  :class:`FeedbackChaosController` additionally *watches* the
cluster's obs event stream (the supervisor feeds it every collected row)
and, on a fixed cadence, aims the chaos layer's actuators at whoever the
stream says is most vulnerable:

* a node that restarted and has not yet converged gets its links
  partitioned — stabilization is attacked mid-flight, exactly when the
  paper's §3 argument has the least slack;
* otherwise the head of the longest waiting chain (the node that has
  waited longest, extended greedily through waiting neighbours) gets
  either a short partition or a burst of replayed captured frames, so
  starvation pressure concentrates where the protocol is already behind.

Every decision draws only on the seeded RNG and previously observed
events, is applied through the ordinary :meth:`apply` path (landing in
``applied`` and the obs stream like any scheduled fault), and
:meth:`as_schedule` renders the whole run — planned and improvised events
alike — as a static :class:`~repro.net.chaos.ChaosSchedule` that replays
without the feedback loop.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, List, Optional, Tuple

from ..net.chaos import ChaosController, ChaosSchedule, FaultEvent, Link
from ..sim.topology import Pid, Topology

__all__ = ["FeedbackChaosController"]


class FeedbackChaosController(ChaosController):
    """A :class:`ChaosController` that also improvises, replayably.

    Parameters beyond the base class: ``topology`` (to aim at links),
    ``seed`` (all decision randomness), ``interval_s`` (decision cadence),
    ``hold_s`` (how long an improvised partition lasts before its heal),
    ``max_decisions`` (improvisation budget), and ``on_decision`` — called
    as ``on_decision(event, reason)`` for every improvised fault so the
    supervisor can publish it as an ``ADVERSARY`` obs event.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        topology: Topology,
        *,
        seed: int = 0,
        interval_s: float = 0.4,
        hold_s: Optional[float] = None,
        max_decisions: int = 64,
        on_fault=None,
        on_crash=None,
        on_restart=None,
        on_byzantine=None,
        on_decision: Optional[Callable[[FaultEvent, str], None]] = None,
    ) -> None:
        super().__init__(
            schedule,
            on_fault=on_fault,
            on_crash=on_crash,
            on_restart=on_restart,
            on_byzantine=on_byzantine,
        )
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.topology = topology
        self.interval_s = interval_s
        self.hold_s = interval_s * 0.75 if hold_s is None else hold_s
        self.max_decisions = max_decisions
        self._rng = random.Random(seed ^ 0xFEEDBACC)
        self._on_decision = on_decision
        self._by_repr: Dict[str, Pid] = {repr(p): p for p in topology.nodes}
        self._neighbors: Dict[str, Tuple[str, ...]] = {
            repr(p): tuple(sorted(repr(q) for q in topology.neighbors(p)))
            for p in topology.nodes
        }
        self._incident: Dict[str, Tuple[Link, ...]] = {
            repr(p): tuple(
                link
                for q in topology.neighbors(p)
                for link in ((p, q), (q, p))
            )
            for p in topology.nodes
        }
        # --- observed service state, keyed by repr(pid) ---
        self._waiting_since: Dict[str, float] = {
            repr(p): 0.0 for p in topology.nodes
        }
        self._holding: Dict[str, float] = {}
        self._awaiting: Dict[str, float] = {}  # restarted, not yet converged
        #: Most recent open lifecycle span per node (tracing runs only):
        #: decisions name the span they struck, so the offline timeline can
        #: line the adversary's moves up against the victim's own trace.
        self._open_span: Dict[str, str] = {}
        self._pending_heals: List[FaultEvent] = []
        #: improvised events, in decision order (subset of ``applied``).
        self.decisions: List[FaultEvent] = []
        #: human-readable reason per decision, parallel to ``decisions``.
        self.reasons: List[str] = []

    # ------------------------------------------------------------ observing

    def observe(self, row: Dict) -> None:
        """Feed one collected obs row (the supervisor calls this inline)."""
        node = row.get("node")
        if node is None:
            return
        event = row.get("event")
        t = float(row.get("t") or 0.0)
        if event == "net-grant":
            self._holding[node] = t
            self._waiting_since.pop(node, None)
        elif event == "net-release":
            self._holding.pop(node, None)
            self._waiting_since[node] = t
        elif event == "net-node-restart":
            self._awaiting[node] = t
            self._holding.pop(node, None)
            self._waiting_since[node] = t
        elif event == "net-convergence":
            self._awaiting.pop(node, None)
        elif event == "net-span-open":
            span = (row.get("detail") or {}).get("span")
            if isinstance(span, str):
                self._open_span[node] = span
        elif event == "net-span-close":
            span = (row.get("detail") or {}).get("span")
            if self._open_span.get(node) == span:
                self._open_span.pop(node, None)

    def waiting_chain(self) -> List[str]:
        """Longest-waiting head, extended greedily through waiting
        neighbours — the obs-stream approximation of the simulator's
        :func:`~repro.adversary.strategies.longest_waiting_chain`."""
        waiting = {
            n: since
            for n, since in self._waiting_since.items()
            if n not in self._holding
        }
        if not waiting:
            return []
        chain = [min(waiting, key=lambda n: (waiting[n], n))]
        seen = set(chain)
        while True:
            frontier = [
                n
                for n in self._neighbors.get(chain[-1], ())
                if n in waiting and n not in seen
            ]
            if not frontier:
                return chain
            nxt = min(frontier, key=lambda n: (waiting[n], n))
            chain.append(nxt)
            seen.add(nxt)

    # ------------------------------------------------------------- deciding

    def decide(self, now_s: float) -> List[FaultEvent]:
        """One improvisation step; pure function of observed state + RNG."""
        at = round(min(now_s, self.schedule.duration_s), 6)
        if self._awaiting:
            # Earliest restarter = deepest into stabilization = closest to
            # converging: cut its links while it is still catching up.
            target = min(self._awaiting, key=lambda n: (self._awaiting[n], n))
            action, reason = "partition", "converging"
        else:
            chain = self.waiting_chain()
            if len(chain) < 2:
                return []
            target = chain[0]
            action = "replay" if self._rng.random() < 0.5 else "partition"
            reason = f"chain-head:{len(chain)}"
        pid = self._by_repr.get(target)
        links = self._incident.get(target, ())
        if pid is None or not links:
            return []
        span = self._open_span.get(target)
        if span is not None:
            reason = f"{reason} span:{span}"
        events: List[FaultEvent] = []
        if action == "partition":
            events.append(
                FaultEvent(at_s=at, kind="partition", links=links, node=pid)
            )
            heal_at = round(
                min(now_s + self.hold_s, self.schedule.duration_s), 6
            )
            self._pending_heals.append(
                FaultEvent(at_s=heal_at, kind="heal", links=links, node=pid)
            )
        else:
            inbound = tuple((a, b) for (a, b) in links if b == pid)
            events.append(
                FaultEvent(at_s=at, kind="replay", links=inbound, node=pid)
            )
        self.reasons.extend(reason for _ in events)
        return events

    # -------------------------------------------------------------- running

    async def run(self, started_at: float, clock=None) -> None:
        """Interleave the base schedule, pending heals, and decisions."""
        loop = asyncio.get_running_loop()
        now = clock if clock is not None else loop.time
        base = list(self.schedule.events)
        i = 0
        next_decision = self.interval_s
        while True:
            now_s = now() - started_at
            while i < len(base) and base[i].at_s <= now_s:
                await self.apply(base[i])
                i += 1
            for event in [e for e in self._pending_heals if e.at_s <= now_s]:
                self._pending_heals.remove(event)
                await self.apply(event)
            if now_s >= next_decision:
                if len(self.decisions) < self.max_decisions:
                    for event in self.decide(now_s):
                        self.decisions.append(event)
                        await self.apply(event)
                        if self._on_decision is not None:
                            self._on_decision(event, self.reasons[-1])
                next_decision = now_s + self.interval_s
            wake = [next_decision]
            if i < len(base):
                wake.append(base[i].at_s)
            wake.extend(e.at_s for e in self._pending_heals)
            delay = min(wake) - (now() - started_at)
            await asyncio.sleep(min(max(delay, 0.01), 0.25))

    def as_schedule(self) -> ChaosSchedule:
        """The run so far as a static fault plan: every applied event —
        planned or improvised — in application order, replayable by a plain
        :class:`~repro.net.chaos.ChaosController` (or written to a corpus
        file) without the feedback loop."""
        return ChaosSchedule(
            seed=self.schedule.seed,
            duration_s=self.schedule.duration_s,
            profiles=dict(self.schedule.profiles),
            events=tuple(self.applied),
        )
