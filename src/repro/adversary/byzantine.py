"""The beyond-finite fault: a "crashed" process that never stops talking.

The paper's malicious crash (§2) is *finitely* arbitrary — ``k`` havoc
steps, then a halt — and the tolerance proofs lean on the halt: whatever
forged forks a faulty process scattered, it eventually stops renewing
them, and the repair layer's counters age the damage out.  This module
removes the halt.  A :class:`ByzantineDinerProcess` claims the eating
state forever and keeps emitting *protocol-shaped* fork frames (correct
edge key, strictly increasing transfer counter) to every neighbour, so
receivers cannot tell the frames from honest transfers.

The point is to *demonstrate the boundary*, not to survive it: neighbour
exclusion **is** violated at such a node, but — as in the bare fork layer's
malicious-crash analysis — forged forks only exist on the faulty node's
own incident edges, so every simultaneous-eating pair includes the faulty
node, and excluding it restores a clean audit
(:func:`repro.net.lock.attribute_violations` finds it from the violation
pairs alone).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.state import DinerState
from ..mp.diners_mp import TAG_FORK, DinersMpProcess, edge_key
from ..mp.node import MpProcess
from ..sim.topology import Pid, Topology

__all__ = ["ByzantineDinerProcess", "subvert"]

E = DinerState.EATING.value


class ByzantineDinerProcess(DinersMpProcess):
    """A diner subverted at "crash" time: eats forever, forges forks.

    Every tick it (re-)enters the eating state and sends each neighbour a
    fork frame for their shared edge — ``(fork, key, c)`` with a counter
    above anything the edge has seen in repair mode, ``(fork, key)``
    otherwise — so the neighbour believes it holds the fork and may eat
    concurrently.  Incoming messages are ignored: the node answers no
    request and acknowledges nothing.

    Works in both runtimes: swapped into ``MpEngine.processes`` it rides
    engine ticks; assigned to a live ``NodeServer.process`` it rides the
    server's tick loop (the server re-reads the attribute every tick).
    """

    def __init__(
        self,
        pid: Pid,
        topology: Topology,
        *,
        repair: bool = True,
        counter_floor: Dict[Pid, int] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(pid, topology, eat_ticks=1, seed=seed, repair=repair)
        self.state = E
        self.forged = 0
        # Start above the victim's per-edge counters so repair-mode
        # receivers (who track roughly the same value) accept the forgery.
        self._forge_c: Dict[Pid, int] = {
            q: (counter_floor or {}).get(q, 0) + 1
            for q in topology.neighbors(pid)
        }

    def on_message(self, ctx, src: Pid, payload: Tuple) -> None:
        return  # deaf: no acks, no surrendered forks, no missing-reports

    def on_tick(self, ctx) -> None:
        self.state = E  # never leaves the critical section
        self._eating_remaining = 2
        for q in ctx.neighbors:
            key = edge_key(self.pid, q)
            if self.repair:
                c = self._forge_c[q]
                self._forge_c[q] = c + 1
                sent = ctx.send(q, (TAG_FORK, key, c))
            else:
                sent = ctx.send(q, (TAG_FORK, key))
            if sent:
                self.forged += 1


def subvert(process: MpProcess, *, seed: int = 0) -> ByzantineDinerProcess:
    """Build the Byzantine double of a (diner) process, keeping identity.

    Reads the victim's pid, topology, repair flag, and per-edge counters so
    the forger speaks the same dialect on the same edges with counters the
    neighbours will honour.  The caller swaps the result into the runtime
    (``engine.processes[pid] = ...`` or ``node.process = ...``) — from the
    network's viewpoint the node "crashed" and something wearing its
    identity kept transmitting.
    """
    if not isinstance(process, DinersMpProcess):
        raise TypeError(
            f"can only subvert a DinersMpProcess, got {type(process).__name__}"
        )
    return ByzantineDinerProcess(
        process.pid,
        process._topology,
        repair=process.repair,
        counter_floor=dict(process.edge_c),
        seed=seed,
    )
