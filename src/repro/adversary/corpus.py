"""The corpus schedule-file format: versioned, canonical, self-contained.

``repro fuzz`` distils its worst finds into these files; ``repro cluster
soak --schedule-file`` replays them.  Like the BENCH artefacts, the format
carries an explicit ``format`` version so a reader can refuse documents it
does not understand instead of replaying something subtly different.

A schedule file is one JSON document:

* ``format`` — integer version (:data:`SCHEDULE_FORMAT_VERSION`);
* ``source`` — always ``"chaos-schedule"`` (artefact-family sniffing);
* ``topology`` — the ``kind:arg`` spec the schedule was built against
  (the file is self-contained: the replayer reconstructs the graph from
  this, never from CLI flags);
* ``seed`` / ``duration_s`` — the :class:`~repro.net.chaos.ChaosSchedule`
  scalars;
* ``profiles`` — ``{"<src>-><dst>": {delay_s, jitter_s, drop_p, dup_p,
  reorder_p}}`` keyed by node ``repr``;
* ``events`` — the fault list in order; ``garbage`` bursts are hex-encoded
  so arbitrary bytes survive JSON;
* ``meta`` — free-form provenance (fuzzer seed, score, signature…), not
  interpreted on replay.

Writing is canonical — sorted keys, fixed separators, trailing newline,
atomic tmp-then-replace — so the fuzzer's determinism contract ("two runs,
byte-identical files") holds at the byte level, and corpus diffs in review
show real changes only.  Reading validates with
:func:`~repro.net.chaos.validate_schedule`, so a hand-edited corpus entry
that went structurally wrong fails loudly before a cluster boots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..net.chaos import (
    ChaosSchedule,
    FaultEvent,
    Link,
    LinkProfile,
    validate_schedule,
)
from ..sim.topology import Pid, Topology, from_spec

__all__ = [
    "SCHEDULE_FORMAT_VERSION",
    "SCHEDULE_SOURCE",
    "ScheduleDoc",
    "read_schedule",
    "schedule_from_doc",
    "schedule_to_doc",
    "write_schedule",
]

SCHEDULE_FORMAT_VERSION = 1
SCHEDULE_SOURCE = "chaos-schedule"


@dataclass(frozen=True)
class ScheduleDoc:
    """A parsed schedule file, graph reconstructed and plan validated."""

    schedule: ChaosSchedule
    topology: Topology
    topology_spec: str
    meta: Dict[str, Any]


def schedule_to_doc(
    schedule: ChaosSchedule,
    *,
    topology_spec: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Render a schedule as the (JSON-ready) document dict."""
    events: List[Dict[str, Any]] = []
    for event in schedule.events:
        body: Dict[str, Any] = {
            "at_s": round(event.at_s, 6),
            "kind": event.kind,
            "links": [[repr(a), repr(b)] for a, b in event.links],
        }
        if event.node is not None:
            body["node"] = repr(event.node)
        if event.garbage:
            body["garbage"] = [g.hex() for g in event.garbage]
        events.append(body)
    return {
        "format": SCHEDULE_FORMAT_VERSION,
        "source": SCHEDULE_SOURCE,
        "topology": topology_spec,
        "seed": schedule.seed,
        "duration_s": schedule.duration_s,
        "profiles": {
            f"{a!r}->{b!r}": {
                "delay_s": p.delay_s,
                "jitter_s": p.jitter_s,
                "drop_p": p.drop_p,
                "dup_p": p.dup_p,
                "reorder_p": p.reorder_p,
            }
            for (a, b), p in sorted(
                schedule.profiles.items(), key=lambda kv: repr(kv[0])
            )
        },
        "events": events,
        "meta": dict(meta or {}),
    }


def _pid_of(token: str, by_repr: Dict[str, Pid], context: str) -> Pid:
    try:
        return by_repr[token]
    except KeyError:
        raise ValueError(
            f"{context}: node {token!r} is not in the document's topology"
        ) from None


def schedule_from_doc(doc: Dict[str, Any]) -> ScheduleDoc:
    """Reconstruct schedule + graph from a document dict; validates."""
    if not isinstance(doc, dict):
        raise ValueError("schedule document must be a JSON object")
    version = doc.get("format")
    if version != SCHEDULE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format {version!r} "
            f"(this build reads format {SCHEDULE_FORMAT_VERSION})"
        )
    spec = doc.get("topology")
    if not isinstance(spec, str) or not spec:
        raise ValueError("schedule document lacks a topology spec")
    topology = from_spec(spec)
    by_repr = {repr(p): p for p in topology.nodes}

    profiles: Dict[Link, LinkProfile] = {}
    for key, fields in (doc.get("profiles") or {}).items():
        src, _, dst = key.partition("->")
        link = (
            _pid_of(src, by_repr, f"profile {key!r}"),
            _pid_of(dst, by_repr, f"profile {key!r}"),
        )
        profiles[link] = LinkProfile(**fields)

    events: List[FaultEvent] = []
    for i, body in enumerate(doc.get("events") or []):
        context = f"event #{i}"
        links: Tuple[Link, ...] = tuple(
            (
                _pid_of(a, by_repr, context),
                _pid_of(b, by_repr, context),
            )
            for a, b in body.get("links", [])
        )
        node = body.get("node")
        events.append(
            FaultEvent(
                at_s=float(body["at_s"]),
                kind=body["kind"],
                links=links,
                node=None if node is None else _pid_of(node, by_repr, context),
                garbage=tuple(bytes.fromhex(g) for g in body.get("garbage", [])),
            )
        )

    schedule = ChaosSchedule(
        seed=int(doc.get("seed", 0)),
        duration_s=float(doc["duration_s"]),
        profiles=profiles,
        events=tuple(events),
    )
    validate_schedule(schedule)
    return ScheduleDoc(
        schedule=schedule,
        topology=topology,
        topology_spec=spec,
        meta=dict(doc.get("meta") or {}),
    )


def _canonical(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


def write_schedule(
    path: Path | str,
    schedule: ChaosSchedule,
    *,
    topology_spec: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Serialise canonically (atomic write); returns the path."""
    doc = schedule_to_doc(schedule, topology_spec=topology_spec, meta=meta)
    # Round-trip before committing bytes: a schedule we cannot read back is
    # a corpus entry CI can never replay.
    schedule_from_doc(json.loads(_canonical(doc)))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(_canonical(doc), encoding="utf-8")
    tmp.replace(path)
    return path


def read_schedule(path: Path | str) -> ScheduleDoc:
    """Load + validate one schedule file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    try:
        return schedule_from_doc(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from None
