"""State-reading adversary strategies for the shared-memory simulator.

:class:`~repro.sim.scheduler.AdversarialDaemon` scores each ``(pid,
action)`` pair in isolation, which is enough to starve a *fixed* victim
(:func:`~repro.sim.scheduler.starve_target`).  The strategies here plug
into :class:`~repro.sim.scheduler.StrategyDaemon` and read the whole
configuration every selection, so they can chase *moving* targets — the
canonical one being the longest waiting chain, whose head changes as
priorities flip.  All randomness comes from the daemon-supplied ``rng``,
so a run replays exactly from its seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

from ..core.state import VAR_STATE, DinerState, direct_ancestors
from ..sim.configuration import Configuration
from ..sim.scheduler import AdversaryStrategy, Choice
from ..sim.topology import Pid

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import System

__all__ = ["ChainStarveStrategy", "longest_waiting_chain"]


def longest_waiting_chain(config: Configuration) -> Tuple[Pid, ...]:
    """The actual path behind :func:`~repro.obs.probes.waiting_chain_length`.

    Returns ``(p0, p1, ..., pk)`` where each ``p_i`` is live and hungry and
    ``p_{i+1}`` is a hungry direct ancestor of ``p_i`` — so ``p0`` is the
    most deeply blocked process and ``pk`` the *root* every member
    transitively waits on.  Ties break by ``repr`` so the result is a pure
    function of the configuration.  Empty when nobody is hungry; a
    priority cycle is cut after ``len(nodes)`` hops.
    """
    hungry = DinerState.HUNGRY.value
    faulty = config.faulty
    nodes = [
        p
        for p in config.topology.nodes
        if p not in faulty and config.local(p, VAR_STATE) == hungry
    ]
    hungry_set = set(nodes)
    cap = len(config.topology.nodes)
    memo: Dict[Pid, int] = {}
    succ: Dict[Pid, Pid] = {}  # the ancestor realising chain(p)
    ON_STACK = -1

    def chain(p: Pid) -> int:
        cached = memo.get(p)
        if cached == ON_STACK:
            return cap  # cycle of hungry processes: unbounded wait
        if cached is not None:
            return cached
        memo[p] = ON_STACK
        best = 1
        for q in sorted(direct_ancestors(config, p), key=repr):
            if q not in hungry_set:
                continue
            length = min(cap, 1 + chain(q))
            if length > best:
                best = length
                succ[p] = q
        memo[p] = best
        return best

    head: Pid | None = None
    head_len = 0
    for p in sorted(nodes, key=repr):
        length = chain(p)
        if length > head_len:
            head_len = length
            head = p
    if head is None:
        return ()
    path: List[Pid] = [head]
    seen: Set[Pid] = {head}
    while True:
        nxt = succ.get(path[-1])
        if nxt is None or nxt in seen or len(path) >= cap:
            break
        path.append(nxt)
        seen.add(nxt)
    return tuple(path)


class ChainStarveStrategy(AdversaryStrategy):
    """Starve the longest waiting chain by serving everyone else first.

    Each selection the strategy snapshots the system, finds the longest
    waiting chain, and ranks enabled actions: steps of the chain's *root*
    (the process whose progress would unwind the whole chain) score lowest,
    steps of other chain members next, everything else highest.  The daemon
    therefore keeps the chain intact as long as its patience allows — the
    reactive analogue of :func:`~repro.sim.scheduler.starve_target`, and
    the schedule the failure-locality experiments call "worst observed".

    The chain is recomputed at most once per engine step (selections within
    a step share the snapshot), and ties at equal rank break through the
    daemon's ``rng``, so a fixed seed replays the schedule exactly.
    """

    def __init__(self) -> None:
        self._step = -1
        self._chain: Tuple[Pid, ...] = ()
        #: the chain observed at each recompute, newest last — experiment
        #: scripts read this to report what the adversary was chasing.
        self.history: List[Tuple[Pid, ...]] = []

    def _rank(self, pid: Pid) -> int:
        if not self._chain:
            return 2
        if pid == self._chain[-1]:  # the root everyone waits on
            return 0
        if pid in self._chain:
            return 1
        return 2

    def choose(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        if step != self._step:
            self._step = step
            self._chain = longest_waiting_chain(system.snapshot())
            self.history.append(self._chain)
        best_rank = max(self._rank(pid) for pid, _ in enabled)
        candidates = [c for c in enabled if self._rank(c[0]) == best_rank]
        return candidates[rng.randrange(len(candidates))]

    def reset(self) -> None:
        self._step = -1
        self._chain = ()
        self.history = []
