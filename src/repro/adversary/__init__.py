"""The adversary subsystem: adaptive scheduling, Byzantine subversion,
coverage-guided chaos fuzzing.

The chaos layer (:mod:`repro.net.chaos`) draws its fault plan from a seed
*before* the run; everything here reacts to the run itself while staying
replayable:

* :mod:`repro.adversary.strategies` — state-reading daemon strategies for
  the shared-memory simulator (plug into
  :class:`~repro.sim.scheduler.StrategyDaemon`), e.g. starving the head of
  the longest waiting chain as it moves;
* :mod:`repro.adversary.byzantine` — the beyond-the-model fault: a
  "crashed" process that keeps emitting protocol-shaped frames instead of
  halting, for both the message-passing engine and the live cluster;
* :mod:`repro.adversary.feedback` — a :class:`~repro.net.chaos.ChaosController`
  subclass that reads the cluster's obs event stream and aims partitions,
  replays, and heals at the most vulnerable node, recording every decision
  as a static, replayable schedule;
* :mod:`repro.adversary.corpus` — the versioned schedule-file format that
  ``repro fuzz`` writes and ``repro cluster soak --schedule-file`` replays;
* :mod:`repro.adversary.fuzz` — the coverage-guided fuzzing loop scoring
  mutated schedules by novel behaviour signatures on the deterministic
  message-passing engine.
"""

from .byzantine import ByzantineDinerProcess, subvert
from .corpus import (
    SCHEDULE_FORMAT_VERSION,
    ScheduleDoc,
    read_schedule,
    schedule_from_doc,
    schedule_to_doc,
    write_schedule,
)
from .feedback import FeedbackChaosController
from .fuzz import FuzzLimits, FuzzResult, evaluate_schedule, mutate_schedule, run_fuzz
from .strategies import ChainStarveStrategy, longest_waiting_chain

__all__ = [
    "ByzantineDinerProcess",
    "ChainStarveStrategy",
    "FeedbackChaosController",
    "FuzzLimits",
    "FuzzResult",
    "SCHEDULE_FORMAT_VERSION",
    "ScheduleDoc",
    "evaluate_schedule",
    "longest_waiting_chain",
    "mutate_schedule",
    "read_schedule",
    "run_fuzz",
    "schedule_from_doc",
    "schedule_to_doc",
    "subvert",
    "write_schedule",
]
