"""The default benchmark kernels: every hot path the repo cares about.

Importing this module populates the shared registry
(:func:`repro.perf.bench.registry`).  Kernels are deterministic given their
baked-in seeds and touch no global randomness, so two runs on the same
machine measure the same work.

Naming convention: ``<subsystem>/<operation>/<instance>``.  The instance
suffix pins the topology/scale, so a future PR that adds bigger instances
extends the trajectory instead of silently re-labelling it.

Each kernel bakes an inner repetition count into one call (``ops``) large
enough that a round is comfortably above clock granularity but small enough
that ``--quick`` stays CI-cheap.
"""

from __future__ import annotations

import random

from .bench import register


@register("engine/steps/ring16", ops=1000)
def engine_steps_ring():
    """Full engine step loop: ring(16), everyone hungry, weakly fair.

    ``REPRO_FLIGHT=1`` arms a flight recorder under the *same kernel
    name*: every emitted event is noted into the bounded in-memory ring
    through an attached bus (the armed-always path a live node pays), so
    ``repro bench --compare --threshold 0.10`` between a plain and an
    armed run is exactly the CI gate on recording overhead.
    """
    import os

    from ..core import NADiners
    from ..sim import AlwaysHungry, Engine, System, ring

    bus = None
    if os.environ.get("REPRO_FLIGHT") == "1":
        from ..obs import EventBus, FlightRecorder

        flight = FlightRecorder("bench")
        bus = EventBus()
        bus.subscribe_all(
            lambda ev: flight.note_event({"t": ev.step, "event": ev.kind.value})
        )
    engine = Engine(
        System(ring(16), NADiners()), hunger=AlwaysHungry(), seed=1, bus=bus
    )
    return lambda: engine.run(1000)


@register("engine/steps/line16", ops=1000)
def engine_steps_line():
    """Same loop on a line — the diameter-heavy extreme of the topology set."""
    from ..core import NADiners
    from ..sim import AlwaysHungry, Engine, System, line

    engine = Engine(System(line(16), NADiners()), hunger=AlwaysHungry(), seed=1)
    return lambda: engine.run(1000)


@register("engine/steps/grid4x4", ops=1000)
def engine_steps_grid():
    """Same loop on a grid — degree-4 neighbourhoods, denser guards."""
    from ..core import NADiners
    from ..sim import AlwaysHungry, Engine, System, grid

    engine = Engine(System(grid(4, 4), NADiners()), hunger=AlwaysHungry(), seed=1)
    return lambda: engine.run(1000)


@register("snapshot/ring16", ops=100)
def snapshot_cost():
    """Configuration snapshot cost — the price of every observation."""
    from ..core import NADiners
    from ..sim import System, ring

    system = System(ring(16), NADiners())

    def kernel():
        for _ in range(100):
            system.snapshot()

    return kernel


@register("invariant/eval/ring16", ops=100)
def invariant_eval():
    """Full invariant ``I`` on a converged ring(16) configuration."""
    from ..core import NADiners, invariant_holds
    from ..sim import AlwaysHungry, Engine, System, ring

    system = System(ring(16), NADiners())
    Engine(system, hunger=AlwaysHungry(), seed=2).run(3000)
    config = system.snapshot()

    def kernel():
        for _ in range(100):
            invariant_holds(config)

    return kernel


@register("invariant/red_fixpoint/ring16", ops=20)
def red_fixpoint():
    """RD fixpoint on a corrupted ring(16) with two dead processes."""
    from ..core import NADiners, red_set
    from ..sim import System, ring

    system = System(ring(16), NADiners())
    system.randomize(random.Random(3))
    system.kill(0)
    system.kill(8)
    config = system.snapshot()

    def kernel():
        for _ in range(20):
            red_set(config)

    return kernel


@register("checker/successors/ring6", ops=20)
def checker_successors():
    """Model-checker successor generation from a busy ring(6) state."""
    from ..core import NADiners
    from ..sim import System, ring
    from ..verification import TransitionSystem

    topo = ring(6)
    algo = NADiners(depth_cap=topo.diameter + 1)
    system = System(topo, algo)
    for p in system.pids:
        system.write_local(p, "needs", True)
    config = system.snapshot()
    ts = TransitionSystem(algo, topo)

    def kernel():
        for _ in range(20):
            ts.successors(config)

    return kernel


@register("fastcore/steps/ring16", ops=1000)
def fastcore_steps_ring():
    """Packed-state engine step loop: the fast twin of ``engine/steps/ring16``.

    Identical workload — ring(16), everyone hungry, weakly fair, seed 1,
    1000 steps per op — on :class:`repro.fastcore.FastEngine` instead of the
    object model.  The CI gate requires this kernel's median to be at least
    10x faster than ``engine/steps/ring16``; RNG parity means both kernels
    execute the *same* action sequence, so the ratio is pure representation
    overhead, not divergent work.
    """
    from ..core import NADiners
    from ..fastcore import FastEngine
    from ..sim import AlwaysHungry, ring

    engine = FastEngine(ring(16), NADiners(), hunger=AlwaysHungry(), seed=1)
    return lambda: engine.run(1000)


@register("fastcore/successors/ring6", ops=20)
def fastcore_successors():
    """Packed successor generation: the fast twin of ``checker/successors/ring6``.

    Same busy ring(6) state and the same 20 successor expansions per op,
    but over :meth:`FastTransitionSystem.successors_packed` — bitset guard
    evaluation plus packed-copy commands, no Configuration objects.  CI
    gates this at >= 10x the object kernel's median.
    """
    from ..core import NADiners
    from ..fastcore.explorer import FastTransitionSystem
    from ..sim import System, ring

    topo = ring(6)
    algo = NADiners(depth_cap=topo.diameter + 1)
    system = System(topo, algo)
    for p in system.pids:
        system.write_local(p, "needs", True)
    config = system.snapshot()
    fts = FastTransitionSystem(algo, topo)
    packed = fts.codec.pack(config)

    def kernel():
        for _ in range(20):
            fts.successors_packed(packed)

    return kernel


@register("mp/ticks/ring8", ops=1000)
def mp_ticks():
    """Message-passing engine deliver/tick loop (Chandy–Misra ring(8))."""
    from ..mp import MpEngine, build_diners
    from ..sim import ring

    topo = ring(8)
    engine = MpEngine(topo, build_diners(topo), seed=4)
    return lambda: engine.run(1000)


@register("campaign/shard/sim_ring6", ops=1, rounds=7)
def campaign_shard():
    """One complete ``sim`` campaign shard, end to end (record included)."""
    from ..campaign import Shard
    from ..campaign.shard import execute_shard

    shard = Shard(
        "sim",
        {"topology": "ring:6", "algorithm": "na-diners", "steps": 400},
        seed=11,
    )
    return lambda: execute_shard(shard)


@register("net/codec/roundtrip", ops=200)
def codec_roundtrip():
    """Wire codec encode→decode of a Chandy–Misra message batch.

    One op is a full round trip — frame a :class:`~repro.mp.channel.Message`
    and feed it back through the garbage-tolerant incremental decoder —
    over a 200-message batch shaped like real fork/request traffic.

    ``REPRO_TRACE_STAMP=1`` switches every frame to the traced v2 encoding
    (Lamport stamp + span id) under the *same kernel name*, so
    ``repro bench --compare --threshold 0.10`` between a plain and a
    stamped run is exactly the CI gate on codec-stamping overhead.
    ``REPRO_FLIGHT=1`` likewise notes every decoded frame into a flight
    recorder's ring — the armed black-box path — gated the same way.
    """
    import os

    from ..mp.channel import Message
    from ..net.codec import Decoder, decode_message, encode_message

    stamped = os.environ.get("REPRO_TRACE_STAMP") == "1"
    flight = None
    if os.environ.get("REPRO_FLIGHT") == "1":
        from ..obs import FlightRecorder

        flight = FlightRecorder("bench")
    rng = random.Random(6)
    messages = [
        Message(
            src=rng.randrange(8),
            dst=rng.randrange(8),
            payload=("fork" if i % 2 else "request", (i % 8, (i + 1) % 8), i % 2 == 0),
        )
        for i in range(200)
    ]

    def kernel():
        decoder = Decoder()
        lc = 0
        for message in messages:
            if stamped:
                lc += 1
                data = encode_message(message, lc=lc, span=f"0/0/{lc % 17}")
            else:
                data = encode_message(message)
            for frame in decoder.feed(data):
                decode_message(frame)
                if flight is not None:
                    flight.note_frame(float(lc), "in", frame.type)

    return kernel


@register("net/trace/stamp+merge", ops=200)
def trace_stamp_merge():
    """The tracing hot path a stamped frame adds on top of plain framing.

    One op is the full causal hop — tick the sender's Lamport clock,
    encode a traced v2 frame (binary stamp block + span id), feed it
    through the incremental decoder, and merge the stamp into the
    receiver's clock — over the same 200-message batch as
    ``net/codec/roundtrip``, so the two trajectories subtract cleanly.
    """
    from ..mp.channel import Message
    from ..net.codec import Decoder, decode_message, encode_message
    from ..obs.tracing import LamportClock

    rng = random.Random(6)
    messages = [
        Message(
            src=rng.randrange(8),
            dst=rng.randrange(8),
            payload=("fork" if i % 2 else "request", (i % 8, (i + 1) % 8), i % 2 == 0),
        )
        for i in range(200)
    ]

    def kernel():
        decoder = Decoder()
        tx = LamportClock()
        rx = LamportClock()
        for i, message in enumerate(messages):
            lc = tx.tick()
            data = encode_message(message, lc=lc, span=f"0/0/{i % 17}")
            for frame in decoder.feed(data):
                decode_message(frame)
                rx.merge(frame.lc)

    return kernel


@register("engine/havoc/ring16", ops=200)
def havoc_step():
    """Malicious havoc steps — the fault path's per-step cost."""
    from ..core import NADiners
    from ..sim import System, ring

    system = System(ring(16), NADiners())
    rng = random.Random(5)

    def kernel():
        for _ in range(200):
            system.havoc_process(5, rng)

    return kernel


@register("net/codec/binary-roundtrip", ops=200)
def codec_binary_roundtrip():
    """Gateway hot path: encode→decode of a REQ/RSP pair, binary v3.

    One op is a full request/response round trip over a 200-pair batch —
    encode a binary v3 acquire/release request, decode it through the
    garbage-tolerant incremental decoder, encode the matching response,
    decode that too — the exact frames the gateway multiplexes upstream.

    ``REPRO_CODEC_JSON=1`` re-times the identical traffic as canonical v1
    JSON frames under the *same kernel name*: comparing a plain run to a
    ``REPRO_CODEC_JSON=1`` run with ``repro bench --compare`` measures the
    binary format's speedup directly (the acceptance gate is >= 1.6x;
    measured ~2.2x).
    """
    import os

    from ..net.codec import (
        T_REQ,
        T_RSP,
        Decoder,
        encode_frame,
        encode_request,
        encode_response,
    )

    as_json = os.environ.get("REPRO_CODEC_JSON") == "1"
    rng = random.Random(6)
    pairs = []
    for i in range(200):
        op = "acquire" if i % 2 else "release"
        req_id = f"c{rng.randrange(10000)}.{i:x}"
        pairs.append((op, req_id))

    def kernel():
        decoder = Decoder()
        for op, req_id in pairs:
            if as_json:
                body = {"op": op, "id": req_id}
                if op == "acquire":
                    body["span"] = req_id
                req = encode_frame(T_REQ, body)
            else:
                req = encode_request(op, req_id)
            for frame in decoder.feed(req):
                if as_json:
                    rsp = encode_frame(
                        T_RSP,
                        {"op": op, "id": frame.body["id"], "ok": True},
                    )
                else:
                    rsp = encode_response(op, frame.body["id"], True)
                for _ in decoder.feed(rsp):
                    pass

    return kernel


@register("gateway/mux", ops=200)
def gateway_mux():
    """The mux data plane: submit→route→resolve for a client fleet.

    One op is a full operation lifecycle — admission windows, slot
    round-robin, request-id allocation, pending tracking, completion
    with measured wait — over a 200-op batch from 50 logical clients
    against 4 nodes x 2 slots, with enough window pressure that the shed
    path executes too.  This is the per-request CPU the gateway tier
    adds in front of the lock service.
    """
    from ..gateway.admission import AdmissionConfig
    from ..gateway.mux import GatewayMux

    rng = random.Random(6)
    ops = [
        (f"c{rng.randrange(50)}", rng.randrange(4)) for _ in range(200)
    ]

    def kernel():
        mux = GatewayMux(
            ["n0", "n1", "n2", "n3"],
            upstreams_per_node=2,
            admission=AdmissionConfig(max_per_client=2, max_queue_depth=16),
        )
        now = 0.0
        backlog = []
        for client, node in ops:
            now += 0.001
            decision = mux.submit(client, node, "acquire", now)
            if decision.admitted:
                backlog.append(decision.req_id)
            if len(backlog) >= 8:
                for req_id in backlog:
                    mux.resolve(req_id, True, now)
                backlog.clear()
        for req_id in backlog:
            mux.resolve(req_id, True, now)

    return kernel
