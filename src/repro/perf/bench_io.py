"""``BENCH_*.json``: the versioned performance-trajectory file format.

One file is one benchmark run on one machine: per-benchmark robust stats
plus environment provenance (git revision, Python, platform, CPU count), so
a sequence of files committed over PRs forms a *comparable trajectory* —
the question "did PR N make the engine slower?" becomes
``repro bench --compare BENCH_old.json BENCH_new.json``.

The comparison gate is noise-tolerant by construction: it compares
**medians** (robust to one-sided scheduling noise) and only fails past a
relative ``threshold`` (default +25 %).  Comparing files from different
hardware is still apples-to-oranges for absolute numbers — CI uses a wider
threshold for exactly that reason — but the per-benchmark *ratios* remain
the honest first-order signal.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .bench import BenchResult

BENCH_FORMAT_VERSION = 1

#: Default regression gate: fail past a +25 % median slowdown.
DEFAULT_THRESHOLD = 0.25


def git_revision(cwd: Optional[Path] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def environment() -> Dict[str, Any]:
    """Provenance snapshot: where and on what these numbers were measured."""
    return {
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def bench_payload(
    results: Sequence[BenchResult],
    *,
    options: Optional[Mapping[str, Any]] = None,
    env: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The complete BENCH document for a run."""
    return {
        "format": BENCH_FORMAT_VERSION,
        "kind": "bench",
        "env": dict(env) if env is not None else environment(),
        "options": dict(options or {}),
        "benchmarks": {r.name: r.payload() for r in results},
    }


def write_bench(
    path: Path | str,
    results: Sequence[BenchResult],
    *,
    options: Optional[Mapping[str, Any]] = None,
    env: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a BENCH document (parents created, atomic replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = bench_payload(results, options=options, env=env)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(path)
    return path


def read_bench(path: Path | str) -> Dict[str, Any]:
    """Load and validate a BENCH document.

    Raises ``ValueError`` with a one-line reason on anything that is not a
    version-matched BENCH file — the CLI turns that into a clean exit.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc.msg})") from None
    if not isinstance(payload, dict) or payload.get("kind") != "bench":
        raise ValueError(f"{path}: not a BENCH file")
    if payload.get("format") != BENCH_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported BENCH format {payload.get('format')!r}"
        )
    if not isinstance(payload.get("benchmarks"), dict):
        raise ValueError(f"{path}: BENCH file has no benchmarks table")
    return payload


# ----------------------------------------------------------------- compare


@dataclass(frozen=True)
class Delta:
    """One benchmark's old→new movement."""

    name: str
    old_median: float
    new_median: float

    @property
    def ratio(self) -> float:
        """new/old; > 1 is a slowdown.  ``inf`` when old is zero."""
        if self.old_median <= 0:
            return float("inf") if self.new_median > 0 else 1.0
        return self.new_median / self.old_median

    def regressed(self, threshold: float) -> bool:
        return self.ratio > 1.0 + threshold


@dataclass(frozen=True)
class CompareReport:
    """Everything ``--compare`` derives from two BENCH files."""

    deltas: List[Delta]
    #: Present only in the new / only in the old file.
    added: List[str]
    removed: List[str]
    threshold: float
    #: Present in both files but without a usable baseline median (zero,
    #: missing, or malformed stats) — reported, never gated on.
    no_baseline: List[str] = dataclass_field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median_of(doc: Any) -> Optional[float]:
    """The kernel's median, or ``None`` when the stats are unusable.

    A zero median is unusable too: it cannot anchor a ratio (a kernel that
    measured 0s has no meaningful baseline, and gating new/0 would flag
    every future run as an infinite regression).
    """
    if not isinstance(doc, Mapping):
        return None
    stats = doc.get("stats")
    if not isinstance(stats, Mapping):
        return None
    median = stats.get("median_s")
    if not isinstance(median, (int, float)) or isinstance(median, bool):
        return None
    median = float(median)
    if median <= 0 or median != median:
        return None
    return median


def compare(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareReport:
    """Compare two BENCH documents; deltas ranked worst-slowdown first.

    Kernels whose baseline median is zero, missing, or malformed are listed
    under ``no_baseline`` ("new kernel / no baseline" in the table) instead
    of producing a division-by-zero crash or a spurious ∞-ratio regression.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    deltas: List[Delta] = []
    no_baseline: List[str] = []
    for name in sorted(set(old_benches) & set(new_benches)):
        old_median = _median_of(old_benches[name])
        new_median = _median_of(new_benches[name])
        if old_median is None or new_median is None:
            no_baseline.append(name)
            continue
        deltas.append(
            Delta(name=name, old_median=old_median, new_median=new_median)
        )
    deltas.sort(key=lambda d: (-d.ratio, d.name))
    return CompareReport(
        deltas=deltas,
        added=sorted(set(new_benches) - set(old_benches)),
        removed=sorted(set(old_benches) - set(new_benches)),
        threshold=threshold,
        no_baseline=no_baseline,
    )


@dataclass(frozen=True)
class HistoryEntry:
    """One BENCH file's contribution to the trajectory table."""

    label: str
    path: Path
    timestamp: Optional[str]
    git_rev: Optional[str]
    medians: Dict[str, float]


def scan_bench_history(
    directory: Path | str,
) -> "tuple[List[HistoryEntry], List[str]]":
    """Every ``BENCH_*.json`` under ``directory``, oldest first.

    Returns ``(entries, ignored)``: entries sorted by environment
    timestamp (files without one sort first, by name) and the names of
    ``BENCH_*.json`` files that failed validation — a foreign file in the
    directory degrades the table, it does not kill it.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise OSError(f"{directory}: not a directory")
    entries: List[HistoryEntry] = []
    ignored: List[str] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        # A malformed or truncated file degrades the table by one column;
        # it must never abort the whole history scan, so every per-file
        # failure mode (unreadable, bad JSON, wrong shape inside an
        # otherwise valid document) lands in ``ignored``.
        try:
            payload = read_bench(path)
            env = payload.get("env")
            if not isinstance(env, Mapping):
                env = {}
            medians: Dict[str, float] = {}
            for name, doc in payload["benchmarks"].items():
                if not isinstance(doc, Mapping):
                    continue
                stats = doc.get("stats")
                median = stats.get("median_s") if isinstance(stats, Mapping) else None
                if isinstance(median, (int, float)) and not isinstance(median, bool):
                    medians[str(name)] = float(median)
            timestamp = env.get("timestamp")
            git_rev = env.get("git_rev")
            entry = HistoryEntry(
                label=path.stem[len("BENCH_"):] or path.stem,
                path=path,
                timestamp=timestamp if isinstance(timestamp, str) else None,
                git_rev=git_rev if isinstance(git_rev, str) else None,
                medians=medians,
            )
        except (OSError, ValueError, TypeError, KeyError, AttributeError):
            ignored.append(path.name)
            continue
        entries.append(entry)
    entries.sort(key=lambda e: (e.timestamp or "", e.label))
    return entries, ignored


def format_history(entries: Sequence[HistoryEntry]) -> str:
    """The per-kernel median trajectory table ``bench --history`` prints.

    One column per BENCH file (oldest left), one row per kernel, and a
    trailing last/first ratio — the at-a-glance answer to "has this kernel
    drifted across the committed trajectory?".
    """
    lines = [f"bench history: {len(entries)} BENCH file(s)"]
    for entry in entries:
        rev = (entry.git_rev or "")[:9]
        provenance = " ".join(s for s in (entry.timestamp, rev) if s)
        lines.append(f"  {entry.label}: {provenance or '(no provenance)'}")
    col = max([10] + [len(e.label) for e in entries])
    header = f"{'benchmark':40s}"
    for entry in entries:
        header += f" {entry.label:>{col}s}"
    lines.append(header + "   trend")
    names = sorted({name for entry in entries for name in entry.medians})
    for name in names:
        row = f"{name:40s}"
        for entry in entries:
            median = entry.medians.get(name)
            cell = "-" if median is None else f"{median:.6f}s"
            row += f" {cell:>{col}s}"
        present = [e.medians[name] for e in entries if name in e.medians]
        if len(present) >= 2 and present[0] > 0:
            row += f"  {present[-1] / present[0]:5.2f}x"
        lines.append(row)
    return "\n".join(lines)


def format_compare(report: CompareReport) -> str:
    """The ranked delta table ``repro bench --compare`` prints."""
    lines = [
        f"{'benchmark':40s} {'old median':>12s} {'new median':>12s} "
        f"{'ratio':>7s}  verdict"
    ]
    for delta in report.deltas:
        if delta.regressed(report.threshold):
            verdict = "REGRESSION"
        elif delta.ratio < 1.0 - report.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"{delta.name:40s} {delta.old_median:>11.6f}s {delta.new_median:>11.6f}s "
            f"{delta.ratio:>6.2f}x  {verdict}"
        )
    for name in report.added:
        lines.append(f"{name:40s} {'-':>12s} {'(new)':>12s}")
    for name in report.no_baseline:
        lines.append(
            f"{name:40s} {'-':>12s} {'-':>12s} {'':>7s}  new kernel / no baseline"
        )
    for name in report.removed:
        lines.append(f"{name:40s} {'(gone)':>12s} {'-':>12s}")
    gate = f"+{report.threshold:.0%} median gate"
    if report.ok:
        lines.append(f"no regressions ({len(report.deltas)} compared, {gate})")
    else:
        worst = report.regressions[0]
        lines.append(
            f"{len(report.regressions)} regression(s) past the {gate}; "
            f"worst: {worst.name} at {worst.ratio:.2f}x"
        )
    return "\n".join(lines)
