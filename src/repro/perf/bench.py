"""The benchmark registry and runner: the repo's kernels, timed without pytest.

A :class:`Benchmark` is a named *setup → kernel* pair: ``setup()`` builds
whatever state the measurement needs (a warmed engine, a snapshot, a
transition system) and returns the zero-argument kernel to time.  The
runner warms the kernel up, times ``rounds`` calls, and reduces them with
robust statistics — **median**, **IQR**, and **min** — because wall-clock
samples on shared machines are contaminated by one-sided noise: the median
and the minimum are stable under it, the mean is not.

``ops`` declares how many logical operations one kernel call performs
(engine steps, snapshots, evaluations...), so results can also be read as
throughput (``ops / median``).

Benchmarks register themselves via :func:`register`; the default kernels
live in :mod:`repro.perf.kernels` and are loaded on first use of
:func:`registry`.  ``pytest-benchmark`` micro benchmarks and ``repro
bench`` both draw from this one registry, so the two never drift apart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..obs.metrics import percentile_of_sorted

#: Kernel factory: called once per benchmark run, returns the callable to time.
Setup = Callable[[], Callable[[], Any]]

_REGISTRY: Dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class Benchmark:
    """One registered measurement."""

    name: str
    setup: Setup
    #: Logical operations per kernel call (for throughput derivation).
    ops: int = 1
    rounds: int = 10
    warmup: int = 2
    quick_rounds: int = 3
    quick_warmup: int = 1

    def plan(self, quick: bool) -> "RunPlan":
        if quick:
            return RunPlan(rounds=self.quick_rounds, warmup=self.quick_warmup)
        return RunPlan(rounds=self.rounds, warmup=self.warmup)


@dataclass(frozen=True)
class RunPlan:
    rounds: int
    warmup: int


def register(
    name: str,
    *,
    ops: int = 1,
    rounds: int = 10,
    warmup: int = 2,
    quick_rounds: int = 3,
    quick_warmup: int = 1,
) -> Callable[[Setup], Setup]:
    """Decorator: register ``setup`` under ``name``.

    Registering the same name twice is an error — it would silently fork
    the trajectory that name carries across ``BENCH_*.json`` files.
    """

    def decorator(setup: Setup) -> Setup:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = Benchmark(
            name=name,
            setup=setup,
            ops=ops,
            rounds=rounds,
            warmup=warmup,
            quick_rounds=quick_rounds,
            quick_warmup=quick_warmup,
        )
        return setup

    return decorator


def registry() -> Mapping[str, Benchmark]:
    """All registered benchmarks (default kernels loaded on first call)."""
    from . import kernels  # noqa: F401 — registers the default set on import

    return dict(_REGISTRY)


def select(pattern: Optional[str] = None) -> List[Benchmark]:
    """Benchmarks whose name contains ``pattern``, in name order."""
    benches = registry()
    names = sorted(benches)
    if pattern:
        names = [n for n in names if pattern in n]
    return [benches[n] for n in names]


# ------------------------------------------------------------------ results


def robust_stats(times: Sequence[float]) -> Dict[str, float]:
    """Median / IQR / min / max / mean of a sample of round times."""
    ordered = sorted(times)
    return {
        "median_s": percentile_of_sorted(ordered, 0.5),
        "iqr_s": percentile_of_sorted(ordered, 0.75)
        - percentile_of_sorted(ordered, 0.25),
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "mean_s": sum(ordered) / len(ordered),
    }


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one benchmark: raw round times plus the derived stats."""

    name: str
    ops: int
    rounds: int
    warmup: int
    times: tuple = field(default_factory=tuple)

    @property
    def stats(self) -> Dict[str, float]:
        return robust_stats(self.times)

    @property
    def median(self) -> float:
        return self.stats["median_s"]

    @property
    def ops_per_sec(self) -> Optional[float]:
        median = self.median
        return self.ops / median if median > 0 else None

    def payload(self) -> Dict[str, Any]:
        """The per-benchmark body of a ``BENCH_*.json`` file."""
        stats = {k: round(v, 9) for k, v in self.stats.items()}
        ops_per_sec = self.ops_per_sec
        return {
            "ops": self.ops,
            "rounds": self.rounds,
            "warmup": self.warmup,
            "stats": stats,
            "ops_per_sec": None if ops_per_sec is None else round(ops_per_sec, 3),
        }


# ------------------------------------------------------------------- runner


def run_benchmark(
    bench: Benchmark,
    *,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
    profiler=None,
) -> BenchResult:
    """Set up, warm up, and time one benchmark.

    ``profiler`` (a ``cProfile.Profile``) is enabled around the timed calls
    only — setup and warmup stay outside the profile.  Profiling inflates
    the round times; callers that profile should not also trust the stats.
    """
    plan = bench.plan(quick)
    kernel = bench.setup()
    for _ in range(plan.warmup):
        kernel()
    times: List[float] = []
    for _ in range(plan.rounds):
        if profiler is not None:
            profiler.enable()
        start = clock()
        kernel()
        elapsed = clock() - start
        if profiler is not None:
            profiler.disable()
        times.append(elapsed)
    return BenchResult(
        name=bench.name,
        ops=bench.ops,
        rounds=plan.rounds,
        warmup=plan.warmup,
        times=tuple(times),
    )


def run_benchmarks(
    benches: Sequence[Benchmark],
    *,
    quick: bool = False,
    clock: Callable[[], float] = time.perf_counter,
    profiler=None,
    progress: Optional[Callable[[BenchResult], None]] = None,
) -> List[BenchResult]:
    """Run a benchmark list in order; ``progress`` fires after each one."""
    results: List[BenchResult] = []
    for bench in benches:
        result = run_benchmark(bench, quick=quick, clock=clock, profiler=profiler)
        results.append(result)
        if progress is not None:
            progress(result)
    return results
