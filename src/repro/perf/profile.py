"""cProfile hooks: hotspots as first-class observability artefacts.

A profile is only useful if it lands where the other numbers land, so the
top-N cumulative hotspots are published into a
:class:`~repro.obs.metrics.MetricsRegistry` (as **meta** metrics — wall
time is environmental) and written with the standard metrics writer.  The
resulting file is a plain metrics JSONL artefact: ``repro stats`` summarises
it exactly like a probe metrics file, no new reader required.

Entry points:

* ``repro bench --profile`` profiles the timed benchmark rounds;
* ``repro run --profile-out`` profiles the engine's hot loop via
  :meth:`repro.sim.engine.Engine.run_profiled`.
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..obs.metrics import MetricsRegistry, write_metrics

#: Hotspots published per profile; enough to see a hot loop, small enough
#: to stay readable in a terminal.
DEFAULT_TOP = 15


def profile_call(fn: Callable[[], Any]) -> Tuple[Any, cProfile.Profile]:
    """Run ``fn()`` under a fresh profiler; returns ``(result, profile)``."""
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn()
    finally:
        profile.disable()
    return result, profile


def _where(func_key: Tuple[str, int, str]) -> str:
    """Compact ``file:line(function)`` label; paths trimmed to two parts."""
    filename, lineno, funcname = func_key
    if filename.startswith("<"):  # builtins, compiled code
        return f"{filename}({funcname})"
    parts = Path(filename).parts
    short = "/".join(parts[-2:]) if len(parts) >= 2 else filename
    return f"{short}:{lineno}({funcname})"


def hotspots(
    profile: cProfile.Profile, *, top: int = DEFAULT_TOP
) -> List[Dict[str, Any]]:
    """The top-``top`` functions by cumulative time, as plain dicts."""
    stats = pstats.Stats(profile)
    rows: List[Dict[str, Any]] = []
    for func_key, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        rows.append(
            {
                "where": _where(func_key),
                "calls": nc,
                "primitive_calls": cc,
                "tot_s": round(tottime, 6),
                "cum_s": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda r: (-r["cum_s"], r["where"]))
    return rows[:top]


def publish_hotspots(
    registry: MetricsRegistry,
    rows: List[Dict[str, Any]],
    *,
    prefix: str = "profile",
) -> MetricsRegistry:
    """Rank-keyed meta gauges: ``profile/00`` is the hottest frame."""
    registry.gauge(f"{prefix}/hotspots", meta=True).set(len(rows))
    for rank, row in enumerate(rows):
        registry.gauge(f"{prefix}/{rank:02d}", meta=True).set(row)
    return registry


def write_profile_metrics(
    path: Path | str,
    profile: cProfile.Profile,
    *,
    header: Optional[Mapping[str, Any]] = None,
    top: int = DEFAULT_TOP,
) -> Path:
    """Write a profile's hotspots as a standard metrics JSONL file."""
    registry = publish_hotspots(MetricsRegistry(), hotspots(profile, top=top))
    head: Dict[str, Any] = {"source": "profile", "top": top}
    if header:
        head.update(header)
    return write_metrics(path, registry, header=head, include_meta=True)


def format_hotspots(rows: List[Dict[str, Any]]) -> str:
    """Terminal rendering of a hotspot table."""
    lines = [f"{'cum_s':>9s} {'tot_s':>9s} {'calls':>9s}  where"]
    for row in rows:
        lines.append(
            f"{row['cum_s']:>9.4f} {row['tot_s']:>9.4f} {row['calls']:>9d}  "
            f"{row['where']}"
        )
    return "\n".join(lines)
