"""Performance observability: benchmark registry, BENCH files, profiling.

The layer every performance claim in this repo flows through:

* :mod:`repro.perf.bench` — the shared benchmark registry and the
  warmup/rounds/robust-stats runner (no pytest required);
* :mod:`repro.perf.kernels` — the default kernels: engine step loops,
  snapshot cost, invariant evaluation, model-checker successors,
  message-passing ticks, campaign-shard throughput;
* :mod:`repro.perf.bench_io` — the versioned ``BENCH_*.json`` trajectory
  format (stats + environment provenance) and the noise-tolerant
  ``--compare`` regression gate;
* :mod:`repro.perf.profile` — cProfile hooks that publish top-N hotspots
  through the standard metrics registry, so ``repro stats`` reads them.
"""

from .bench import (
    Benchmark,
    BenchResult,
    register,
    registry,
    robust_stats,
    run_benchmark,
    run_benchmarks,
    select,
)
from .bench_io import (
    BENCH_FORMAT_VERSION,
    DEFAULT_THRESHOLD,
    CompareReport,
    Delta,
    HistoryEntry,
    bench_payload,
    compare,
    environment,
    format_compare,
    format_history,
    git_revision,
    read_bench,
    scan_bench_history,
    write_bench,
)
from .profile import (
    DEFAULT_TOP,
    format_hotspots,
    hotspots,
    profile_call,
    publish_hotspots,
    write_profile_metrics,
)

__all__ = [
    "Benchmark",
    "BenchResult",
    "register",
    "registry",
    "robust_stats",
    "run_benchmark",
    "run_benchmarks",
    "select",
    "BENCH_FORMAT_VERSION",
    "DEFAULT_THRESHOLD",
    "CompareReport",
    "Delta",
    "HistoryEntry",
    "bench_payload",
    "compare",
    "environment",
    "format_compare",
    "format_history",
    "git_revision",
    "read_bench",
    "scan_bench_history",
    "write_bench",
    "DEFAULT_TOP",
    "format_hotspots",
    "hotspots",
    "profile_call",
    "publish_hotspots",
    "write_profile_metrics",
]
