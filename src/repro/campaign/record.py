"""Campaign trial records and their JSONL encoding.

A campaign's unit of work is a *shard*; running a shard produces one
:class:`TrialRecord`.  Records are streamed to disk as JSON Lines so a
campaign that dies mid-flight loses at most the line being written — the
checkpoint layer (:mod:`repro.campaign.checkpoint`) recovers every complete
line and the runner re-executes only the missing shards.

Determinism contract
--------------------

A record splits into two parts:

* the **canonical part** — ``key``, ``kind``, ``params``, ``seed``,
  ``result`` — a pure function of the shard definition.  Re-running the same
  shard always reproduces it byte for byte (canonical JSON: sorted keys,
  compact separators).
* the **meta part** — ``duration_s`` (per-shard wall time), worker pid,
  engine step counts — useful for profiling a sweep but excluded from the
  determinism contract and from every aggregate.

``canonical_line`` strips the meta part; the determinism regression tests
and the checkpoint digest both operate on canonical lines only.

Format history
--------------

* **v1** — canonical fields plus an opaque ``meta`` object.
* **v2** (current) — per-shard wall time is promoted to a first-class
  ``duration_s`` field (written only with ``include_meta``; still outside
  the canonical part).  The loader accepts both versions, pulling a v1
  record's duration out of its ``meta`` object.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

FORMAT_VERSION = 2

#: Format versions :func:`parse_line` accepts.
ACCEPTED_FORMATS = (1, 2)

#: JSON encoding used for every canonical artefact: stable across runs,
#: machines, and dict-construction orders.
_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text for ``payload`` (sorted keys, compact)."""
    return json.dumps(payload, **_CANONICAL)


def shard_key(kind: str, params: Mapping[str, Any], seed: int) -> str:
    """Stable identity of one shard: sha1 over its canonical definition.

    The key is what checkpoint/resume matches on, so it must not depend on
    dict ordering, worker assignment, or anything else environmental.
    """
    digest = hashlib.sha1(
        canonical_json({"kind": kind, "params": dict(params), "seed": seed}).encode()
    )
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TrialRecord:
    """One completed shard: its definition, its result, and optional meta."""

    key: str
    kind: str
    params: Mapping[str, Any]
    seed: int
    result: Mapping[str, Any]
    meta: Optional[Mapping[str, Any]] = field(default=None, compare=False)
    #: Wall-clock seconds the shard took (format v2); environmental, so
    #: excluded from equality and from the canonical line like ``meta``.
    duration_s: Optional[float] = field(default=None, compare=False)

    def canonical_payload(self) -> Dict[str, Any]:
        """The deterministic part of the record, ready for JSON."""
        return {
            "format": FORMAT_VERSION,
            "key": self.key,
            "kind": self.kind,
            "params": dict(self.params),
            "seed": self.seed,
            "result": dict(self.result),
        }

    def to_line(self, *, include_meta: bool = True) -> str:
        """One JSONL line (no trailing newline)."""
        payload = self.canonical_payload()
        if include_meta:
            if self.duration_s is not None:
                payload["duration_s"] = self.duration_s
            if self.meta is not None:
                payload["meta"] = dict(self.meta)
        return canonical_json(payload)

    def canonical_line(self) -> str:
        """The record's deterministic JSONL form (meta stripped)."""
        return self.to_line(include_meta=False)


def parse_line(line: str) -> Optional[TrialRecord]:
    """Decode one JSONL line; None for blank, truncated, or foreign lines.

    Tolerance here is what makes resume-after-kill work: a campaign killed
    mid-write leaves a final partial line, which simply parses as None and
    gets re-executed.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict) or payload.get("format") not in ACCEPTED_FORMATS:
        return None
    meta = payload.get("meta")
    duration_s = payload.get("duration_s")
    if duration_s is None and isinstance(meta, dict):
        # v1 records kept the duration inside the opaque meta object.
        duration_s = meta.get("duration_s")
    try:
        return TrialRecord(
            key=payload["key"],
            kind=payload["kind"],
            params=payload["params"],
            seed=payload["seed"],
            result=payload["result"],
            meta=meta,
            duration_s=duration_s,
        )
    except KeyError:
        return None


def read_records(path: Path | str) -> List[TrialRecord]:
    """Every complete record in ``path`` (missing file ⇒ empty list)."""
    path = Path(path)
    if not path.exists():
        return []
    records: List[TrialRecord] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            record = parse_line(line)
            if record is not None:
                records.append(record)
    return records


def iter_lines(
    records: Mapping[str, TrialRecord] | List[TrialRecord],
    *,
    include_meta: bool = True,
) -> Iterator[str]:
    """Records as JSONL lines in canonical (key-sorted) order."""
    if isinstance(records, Mapping):
        ordered = [records[k] for k in sorted(records)]
    else:
        ordered = sorted(records, key=lambda r: r.key)
    for record in ordered:
        yield record.to_line(include_meta=include_meta)


def write_records(
    path: Path | str,
    records: Mapping[str, TrialRecord] | List[TrialRecord],
    *,
    include_meta: bool = True,
) -> None:
    """Atomically (re)write ``path`` with records in canonical order.

    Used by the runner's finalize step so a finished campaign file is a
    deterministic function of its shard set, however execution interleaved.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for line in iter_lines(records, include_meta=include_meta):
            handle.write(line + "\n")
    tmp.replace(path)
