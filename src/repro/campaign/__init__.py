"""Parallel, resumable measurement campaigns.

This package scales the repository's quantitative claims from one-shot
loops to many-seed campaigns: work is described as self-contained
:class:`~repro.campaign.shard.Shard`\\ s — simulation trials as
``(topology, algorithm, fault-plan, seed)`` tuples, model-check enumeration
as seed-deterministic slices — executed across a worker pool, streamed to
disk as JSONL records, and resumed for free after a crash (completed shards
are recognised by key and skipped).

Entry points:

* :func:`run_shards` — execute any shard list (the ``sweep`` CLI, the
  parallel ``check``, and ``run_suite`` all go through it);
* :class:`SweepSpec` / :func:`aggregate_sim` — the many-seed randomized
  sweep behind ``python -m repro sweep``;
* :func:`parallel_map` — order-preserving pool map for object-valued work
  (the model checker's graph fragments).
"""

from .checkpoint import ResumePlan, plan_resume, truncate_lines
from .record import (
    TrialRecord,
    canonical_json,
    iter_lines,
    parse_line,
    read_records,
    shard_key,
    write_records,
)
from .runner import (
    CampaignResult,
    campaign_metrics,
    heartbeat_progress,
    parallel_map,
    run_shards,
)
from .shard import ALGORITHMS, HANDLERS, Shard, derive_seed, execute_shard, make_algorithm
from .specs import SweepAggregate, SweepSpec, aggregate_sim

__all__ = [
    "ALGORITHMS",
    "CampaignResult",
    "HANDLERS",
    "ResumePlan",
    "Shard",
    "SweepAggregate",
    "SweepSpec",
    "TrialRecord",
    "aggregate_sim",
    "campaign_metrics",
    "canonical_json",
    "derive_seed",
    "execute_shard",
    "heartbeat_progress",
    "iter_lines",
    "make_algorithm",
    "parallel_map",
    "parse_line",
    "plan_resume",
    "read_records",
    "run_shards",
    "shard_key",
    "truncate_lines",
    "write_records",
]
