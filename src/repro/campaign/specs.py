"""Campaign specifications: many-seed sweeps and their aggregates.

A :class:`SweepSpec` names a randomized simulation campaign the way the
statistical stabilization literature does (many independent seeds per
configuration point, cf. Herescu & Palamidessi's randomized diners): the
cross product of topologies × algorithms × trial indices, each trial a
``sim`` shard with a seed derived deterministically from the sweep's base
seed.  :func:`aggregate_sim` folds the resulting records into the sweep's
headline numbers; aggregation reads only the records' deterministic part,
so the numbers are identical whether a campaign ran fresh, resumed, with 1
worker, or with 16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .record import TrialRecord
from .shard import Shard, derive_seed


@dataclass(frozen=True)
class SweepSpec:
    """A many-seed simulation campaign over topology × algorithm points."""

    topologies: Tuple[str, ...]
    algorithms: Tuple[str, ...] = ("na-diners",)
    trials: int = 8
    steps: int = 5_000
    seed: int = 0
    #: Optional fault description applied to every trial
    #: (see :func:`repro.campaign.shard._fault_plan`).
    fault: Optional[Mapping[str, Any]] = None
    #: State backend for every trial ("object" or "fast").  RNG parity makes
    #: the two produce identical records; "object" is omitted from shard
    #: params so existing checkpoints keep their keys.
    backend: str = "object"

    def shards(self) -> List[Shard]:
        """Expand the sweep into its shard list (deterministic order)."""
        shards: List[Shard] = []
        trial_index = 0
        for topology in self.topologies:
            for algorithm in self.algorithms:
                for trial in range(self.trials):
                    params: Dict[str, Any] = {
                        "topology": topology,
                        "algorithm": algorithm,
                        "steps": self.steps,
                        "trial": trial,
                    }
                    if self.fault is not None:
                        params["fault"] = dict(self.fault)
                    if self.backend != "object":
                        params["backend"] = self.backend
                    shards.append(
                        Shard(
                            "sim", params, derive_seed(self.seed, trial_index)
                        )
                    )
                    trial_index += 1
        return shards


@dataclass(frozen=True)
class SweepAggregate:
    """Deterministic summary of a sim sweep (order-independent)."""

    trials: int
    total_eats: int
    mean_per_1000: float
    min_per_1000: float
    max_per_1000: float
    mean_jain: float
    worst_min_eats: int
    safety_ok: int  #: trials whose final state satisfies E (no neighbours eating)

    def lines(self) -> List[str]:
        """Human-readable report lines with stable formatting."""
        return [
            f"trials: {self.trials}",
            f"total eats: {self.total_eats}",
            f"meals/1k steps: mean={self.mean_per_1000:.4f} "
            f"min={self.min_per_1000:.4f} max={self.max_per_1000:.4f}",
            f"jain fairness: mean={self.mean_jain:.4f}",
            f"worst per-process meals: {self.worst_min_eats}",
            f"safety (E at end): {self.safety_ok}/{self.trials}",
        ]


def aggregate_sim(records: Mapping[str, TrialRecord]) -> SweepAggregate:
    """Fold sim-trial records into a :class:`SweepAggregate`.

    Records are visited in canonical key order, so every run of the same
    campaign — fresh, resumed, or reparallelised — aggregates identically.
    """
    results = [records[key].result for key in sorted(records)]
    results = [r for r in results if r]  # tolerate empty placeholder results
    n = len(results)
    if n == 0:
        return SweepAggregate(0, 0, 0.0, 0.0, 0.0, 0.0, 0, 0)
    per_1000 = [r["per_1000"] for r in results]
    return SweepAggregate(
        trials=n,
        total_eats=sum(r["total_eats"] for r in results),
        mean_per_1000=round(sum(per_1000) / n, 6),
        min_per_1000=min(per_1000),
        max_per_1000=max(per_1000),
        mean_jain=round(sum(r["jain"] for r in results) / n, 6),
        worst_min_eats=min(r["min_live_eats"] for r in results),
        safety_ok=sum(1 for r in results if r["safety_ok"]),
    )
