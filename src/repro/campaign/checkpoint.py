"""Checkpoint/resume: recover completed shards from a campaign's JSONL file.

The runner streams one record line per completed shard.  If the campaign is
killed — OOM, ctrl-C, a truncated filesystem — the file ends with zero or
one partial line.  Resuming is then purely subtractive: parse every complete
line, keep the records whose keys belong to the campaign being (re)run, and
execute only the shards with no record yet.

Because shard keys are pure functions of ``(kind, params, seed)``, a resumed
campaign is guaranteed to slot recovered records into exactly the work units
that produced them; records from other campaigns (stale files, different
seeds) are ignored and dropped at finalize time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .record import TrialRecord, read_records
from .shard import Shard


@dataclass(frozen=True)
class ResumePlan:
    """What a (re)run must do: recovered records and still-missing shards."""

    done: Dict[str, TrialRecord]
    todo: Tuple[Shard, ...]
    #: Records found in the file that belong to no shard of this campaign.
    foreign: int

    @property
    def complete(self) -> bool:
        return not self.todo


def plan_resume(
    shards: Iterable[Shard], path: Optional[Path | str]
) -> ResumePlan:
    """Split ``shards`` into already-recorded and still-to-run.

    ``path=None`` (no checkpoint file) plans a full run.  Duplicate records
    for one key keep the first occurrence; duplicate *shards* are an error —
    they would make "one record per shard" ambiguous.
    """
    shards = list(shards)
    by_key: Dict[str, Shard] = {}
    for shard in shards:
        if shard.key in by_key:
            raise ValueError(
                f"duplicate shard key {shard.key} "
                f"({shard.kind}, seed={shard.seed}) — campaign is ambiguous"
            )
        by_key[shard.key] = shard

    done: Dict[str, TrialRecord] = {}
    foreign = 0
    if path is not None:
        for record in read_records(path):
            if record.key not in by_key:
                foreign += 1
            elif record.key not in done:
                done[record.key] = record
    todo = tuple(s for s in shards if s.key not in done)
    return ResumePlan(done=done, todo=todo, foreign=foreign)


def truncate_lines(path: Path | str, keep: int) -> List[str]:
    """Keep only the first ``keep`` lines of a JSONL file (test helper for
    simulating a killed campaign); returns the dropped lines."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    path.write_text("".join(lines[:keep]), encoding="utf-8")
    return [line.rstrip("\n") for line in lines[keep:]]
