"""Shards: the campaign's unit of work, and the handlers that execute them.

A :class:`Shard` is a fully self-describing ``(kind, params, seed)`` tuple.
Params are plain JSON values (topology *specs*, algorithm *names*, fault
*descriptions* — never live objects), so a shard crosses process boundaries
as cheaply as a dict and its identity (:func:`repro.campaign.record.shard_key`)
is a pure function of its definition.

Two shard families exist:

* **simulation shards** (``sim``, ``throughput``, ``stabilize``,
  ``locality``, ``malicious``, ``masking``) — one randomized trial each,
  seeded from the shard's own ``seed`` through a private
  ``random.Random``;
* **model-check shards** (``check-closure``) — a seed-deterministic slice
  of the state-space enumeration: shard *i* of *k* checks every *k*-th
  configuration starting at offset *i*, so the union of all shards covers
  the space exactly once.

Handlers are module-level functions (multiprocessing needs to pickle them by
reference) and must return JSON-serialisable dicts: these become the
``result`` field of the trial's JSONL record.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from ..core import (
    NADiners,
    NoDynamicThresholdDiners,
    NoFixdepthDiners,
    e_holds,
    invariant_holds,
    invariant_with_threshold,
    nc_holds,
)
from ..sim import (
    AlwaysHungry,
    BenignCrash,
    Engine,
    FaultPlan,
    MaliciousCrash,
    System,
    from_spec,
)
from .record import TrialRecord, shard_key

#: Canonical algorithm registry (name -> zero-argument factory).  The CLI
#: re-exports this; shard handlers use it to rebuild algorithms from names.
ALGORITHMS: Dict[str, Callable[[], Any]] = {
    "na-diners": NADiners,
    "choy-singh": ChoySinghDiners,
    "hygienic": HygienicDiners,
    "fork-ordering": ForkOrderingDiners,
    "no-fixdepth": NoFixdepthDiners,
    "no-threshold": NoDynamicThresholdDiners,
}


def make_algorithm(name: str):
    """Instantiate a registered algorithm by name."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}"
        ) from None


@dataclass(frozen=True)
class Shard:
    """One self-describing unit of campaign work."""

    kind: str
    params: Mapping[str, Any]
    seed: int

    @property
    def key(self) -> str:
        return shard_key(self.kind, self.params, self.seed)


def derive_seed(base: int, index: int) -> int:
    """The canonical per-trial seed schedule of a campaign.

    A fixed affine mix keeps trial seeds deterministic in (base, index) while
    spreading consecutive indices far apart in seed space.
    """
    return (base * 1_000_003 + index * 7_919 + 0x5EED) & 0x7FFF_FFFF


# ------------------------------------------------------------ sim handlers


def _fault_plan(params: Mapping[str, Any], topology) -> Optional[FaultPlan]:
    """Build a fault plan from a shard's JSON fault description.

    ``{"victim": <node index>, "at_step": s, "malicious_steps": m}`` — ``m``
    of 0 (or absent) is a benign crash; positive ``m`` a malicious one.
    """
    fault = params.get("fault")
    if not fault:
        return None
    victim = topology.nodes[fault["victim"]]
    at_step = fault.get("at_step", 0)
    malicious_steps = fault.get("malicious_steps", 0)
    if malicious_steps > 0:
        event = MaliciousCrash(victim, at_step=at_step, malicious_steps=malicious_steps)
    else:
        event = BenignCrash(victim, at_step=at_step)
    return FaultPlan([event])


def _run_sim(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One sweep trial: run to the step budget, report meals + safety.

    ``params["backend"] == "fast"`` swaps the object model for the packed
    fast core; RNG parity guarantees the record is identical either way, so
    a resumed campaign may freely mix backends across shards.
    """
    topology = from_spec(params["topology"])
    algorithm = make_algorithm(params["algorithm"])
    if params.get("backend", "object") == "fast":
        from ..fastcore import FastEngine

        engine = FastEngine(
            topology,
            algorithm,
            hunger=AlwaysHungry(),
            faults=_fault_plan(params, topology),
            seed=seed,
        )
        snapshot = engine.snapshot
        is_live = engine.is_live
    else:
        system = System(topology, algorithm)
        engine = Engine(
            system,
            hunger=AlwaysHungry(),
            faults=_fault_plan(params, topology),
            seed=seed,
        )
        snapshot = system.snapshot
        is_live = system.is_live
    result = engine.run(params["steps"])
    eats = [engine.eats_of(p) for p in topology.nodes]
    total = sum(eats)
    live = [engine.eats_of(p) for p in topology.nodes if is_live(p)]
    square_sum = sum(v * v for v in live)
    jain = (sum(live) ** 2) / (len(live) * square_sum) if square_sum else 0.0
    return {
        "steps": result.steps,
        "eats": eats,
        "total_eats": total,
        "per_1000": round(1000.0 * total / result.steps, 6) if result.steps else 0.0,
        "jain": round(jain, 6),
        "min_live_eats": min(live) if live else 0,
        "safety_ok": e_holds(snapshot()),
    }


def _run_throughput(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Fault-free throughput/fairness trial (suite section E4)."""
    from ..analysis.metrics import throughput_report

    topology = from_spec(params["topology"])
    system = System(topology, make_algorithm(params["algorithm"]))
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    report = throughput_report(engine, params["window"])
    return {
        "per_1000": round(report.per_1000_steps, 6),
        "jain": round(report.jain_index, 6),
        "min_eats": report.min_eats,
        "max_eats": report.max_eats,
        "total": report.total,
    }


def _run_stabilize(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One convergence trial from a fully randomized state (E3).

    Mirrors :func:`repro.analysis.stabilization.convergence_study`'s
    per-trial seed dance exactly: the shard seed feeds one private RNG that
    first randomizes the state, then draws the engine seed.
    """
    from ..analysis.stabilization import plant_priority_cycle, steps_to_predicate
    from ..analysis.stabilization import _find_cycle

    topology = from_spec(params["topology"])
    system = System(topology, make_algorithm(params["algorithm"]))
    rng = random.Random(seed)
    system.randomize(rng)
    if params.get("plant_cycle"):
        cycle = _find_cycle(topology)
        if cycle is not None:
            plant_priority_cycle(system, cycle)
    predicate = nc_holds if params.get("predicate") == "nc" else invariant_holds
    result = steps_to_predicate(
        system,
        predicate,
        max_steps=params["max_steps"],
        seed=rng.randrange(2**31),
        check_every=params.get("check_every", 4),
    )
    return {"converged": result.converged, "steps": result.steps}


def _run_locality(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One failure-locality scenario (E2/E6)."""
    from ..analysis.locality import measure_failure_locality

    topology = from_spec(params["topology"])
    report = measure_failure_locality(
        make_algorithm(params["algorithm"]),
        topology,
        [topology.nodes[i] for i in params["victims"]],
        malicious_steps=params.get("malicious_steps"),
        warmup_steps=params["warmup"],
        settle_steps=params["settle"],
        window=params["window"],
        seed=seed,
    )
    order = {p: i for i, p in enumerate(topology.nodes)}
    return {
        "radius": report.starvation_radius,
        "starving": sorted(order[p] for p in report.starving),
        "eats": [report.eats.get(p, 0) for p in topology.nodes],
    }


def _run_malicious(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Malicious-crash recovery + containment trial (suite section)."""
    topology = from_spec(params["topology"])
    system = System(topology, make_algorithm(params["algorithm"]))
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    malice = params["malicious_steps"]
    engine.run(params.get("warmup", 1000))
    engine.inject(MaliciousCrash(topology.nodes[0], malicious_steps=malice))
    engine.run(malice + 1)
    result = engine.run(
        params.get("recover_budget", 500_000), stop_when=invariant_holds, check_every=8
    )
    recovered = result.stopped or invariant_holds(system.snapshot())
    before = {p: engine.eats_of(p) for p in topology.nodes}
    engine.run(params["window"])
    far_ok = all(
        engine.eats_of(p) > before[p]
        for p in topology.nodes
        if system.is_live(p) and topology.distance(topology.nodes[0], p) > 2
    )
    return {"recovered": recovered, "far_ok": far_ok}


def _run_masking(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Masking census during the arbitrary phase (suite section)."""
    from ..analysis.masking import masking_probe

    topology = from_spec(params["topology"])
    report = masking_probe(
        make_algorithm(params["algorithm"]),
        topology,
        topology.nodes[params["victim"]],
        malicious_steps=params["malicious_steps"],
        observe=params["observe"],
        seed=seed,
    )
    return {
        "faulty_involved": report.faulty_involved,
        "clean_pair": report.clean_pair,
        "sampled": report.sampled_states,
    }


# ----------------------------------------------------- model-check handlers


def _check_instance(params: Mapping[str, Any]):
    """(algorithm, topology, predicate) of a model-check shard."""
    topology = from_spec(params["topology"])
    threshold = params["threshold"]
    algorithm = NADiners(depth_cap=threshold + 1, diameter_override=threshold)
    return algorithm, topology, invariant_with_threshold(threshold)


def _run_check_closure(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Closure check over one deterministic slice of the state space.

    Shard ``i`` of ``k`` checks configurations ``i, i+k, i+2k, ...`` of the
    canonical enumeration order; the union over shards is exactly the check
    the sequential path performs.  ``seed`` is carried for record identity
    only — enumeration is deterministic.
    """
    from ..verification import TransitionSystem, check_closure
    from ..verification.explorer import shard_configurations

    algorithm, topology, predicate = _check_instance(params)
    configs = shard_configurations(
        algorithm,
        topology,
        shard_index=params["shard_index"],
        shard_count=params["shard_count"],
        fixed_locals={"needs": True},
    )
    ts = TransitionSystem(algorithm, topology)
    report = check_closure(ts, predicate, configs)
    counterexample = None
    if report.counterexample is not None:
        from ..sim.serialize import to_json

        cx = report.counterexample
        counterexample = {
            "pid": repr(cx.pid),
            "action": cx.action,
            "source": to_json(cx.source, indent=None),
            "target": to_json(cx.target, indent=None),
        }
    return {
        "holds": report.holds,
        "checked_states": report.checked_states,
        "counterexample": counterexample,
    }


def build_graph_shard(args) -> Dict[Any, List[Any]]:
    """Worker for the parallel convergence check: the reachability closure
    of one enumeration slice.

    Returns a ``{Configuration: [Transition, ...]}`` fragment; the parent
    merges fragments (successor lists are identical wherever shards overlap,
    so dict union is sound) and runs the SCC analysis on the whole graph.
    """
    params, shard_index, shard_count = args
    from ..verification import TransitionSystem
    from ..verification.explorer import shard_configurations

    algorithm, topology, _ = _check_instance(params)
    ts = TransitionSystem(algorithm, topology)
    configs = shard_configurations(
        algorithm,
        topology,
        shard_index=shard_index,
        shard_count=shard_count,
        fixed_locals={"needs": True},
    )
    return ts.reachable_from(configs)


HANDLERS: Dict[str, Callable[[Mapping[str, Any], int], Dict[str, Any]]] = {
    "sim": _run_sim,
    "throughput": _run_throughput,
    "stabilize": _run_stabilize,
    "locality": _run_locality,
    "malicious": _run_malicious,
    "masking": _run_masking,
    "check-closure": _run_check_closure,
}


def execute_shard(shard: Shard) -> TrialRecord:
    """Run one shard to completion and wrap the outcome in a record.

    This is the function the worker pool maps over; it must stay importable
    at module level.  The meta part (worker pid, duration) is intentionally
    *not* part of the record's determinism contract.
    """
    try:
        handler = HANDLERS[shard.kind]
    except KeyError:
        raise KeyError(
            f"unknown shard kind {shard.kind!r}; one of {sorted(HANDLERS)}"
        ) from None
    start = time.perf_counter()
    result = handler(shard.params, shard.seed)
    return TrialRecord(
        key=shard.key,
        kind=shard.kind,
        params=dict(shard.params),
        seed=shard.seed,
        result=result,
        meta={"worker": os.getpid()},
        duration_s=round(time.perf_counter() - start, 6),
    )
