"""The campaign runner: shards × worker pool → streamed JSONL → aggregates.

``run_shards`` is the single entry point every campaign goes through — the
``sweep`` CLI, the parallel model checker, and the experiment suite alike:

1. **plan** — match the shard list against the checkpoint file (if any) and
   keep only the shards with no record yet;
2. **execute** — map :func:`repro.campaign.shard.execute_shard` over the
   remaining shards, either in-process (``jobs=1``, the deterministic
   sequential fallback) or across a ``multiprocessing`` pool;
3. **stream** — append each record to the JSONL file the moment it
   completes (line-buffered, so a kill loses at most one partial line);
4. **finalize** — once all shards are in, atomically rewrite the file in
   canonical key order, which makes a finished campaign file a deterministic
   function of the shard set regardless of worker interleaving.

Workers inherit nothing mutable: every shard re-derives its topology,
algorithm, and RNG from its own JSON params and seed, which is what makes
records reproducible and the checkpoint sound.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, TextIO, TypeVar

from .checkpoint import plan_resume
from .record import TrialRecord, write_records
from .shard import Shard, execute_shard

T = TypeVar("T")
U = TypeVar("U")

ProgressFn = Callable[[TrialRecord, int, int], None]


def heartbeat_progress(
    every: int,
    *,
    stream: TextIO | None = None,
    clock: Callable[[], float] = time.monotonic,
    label: str = "shards",
) -> ProgressFn:
    """A :data:`ProgressFn` that prints one stderr line per ``every``
    completions (and on the last shard) with throughput and ETA.

    The quiet alternative to per-shard progress for large campaigns: a
    10k-shard sweep with ``every=100`` costs 100 lines instead of 10k.
    """
    if every < 1:
        raise ValueError("heartbeat interval must be >= 1")
    out = stream if stream is not None else sys.stderr
    start: List[float] = []

    def progress(record: TrialRecord, done: int, total: int) -> None:
        if not start:
            start.append(clock())
        if done % every != 0 and done != total:
            return
        elapsed = clock() - start[0]
        rate = done / elapsed if elapsed > 0 else 0.0
        if rate > 0 and total > done:
            eta = f"{(total - done) / rate:.0f}s"
        else:
            eta = "0s" if total <= done else "?"
        print(
            f"[{done}/{total}] {label}: {rate:.1f}/s elapsed {elapsed:.0f}s eta {eta}",
            file=out,
        )

    return progress


def campaign_metrics(records: Mapping[str, TrialRecord], registry=None):
    """A metrics registry summarising one campaign's records.

    Deterministic metrics (shard counts per kind, total-eats histogram over
    sim shards) come from the canonical part of each record; the per-shard
    wall-time timer is built from ``duration_s`` and therefore meta.  Pass
    an existing :class:`~repro.obs.metrics.MetricsRegistry` to merge the
    campaign aggregates into it (the suite does, so section gauges and
    campaign counters share one metrics file).
    """
    from ..obs.metrics import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
    registry.counter("campaign/shards").inc(len(records))
    duration = registry.timer("campaign/shard_duration")
    for key in sorted(records):
        record = records[key]
        registry.counter(f"campaign/kind/{record.kind}").inc()
        if record.duration_s is not None:
            duration.observe(record.duration_s)
        total_eats = record.result.get("total_eats")
        if isinstance(total_eats, int):
            registry.histogram("campaign/total_eats").observe(total_eats)
        converged = record.result.get("converged")
        if isinstance(converged, bool):
            registry.counter("campaign/converged").inc(int(converged))
        radius = record.result.get("radius")
        if isinstance(radius, int):
            registry.histogram("campaign/locality_radius").observe(radius)
    return registry


def _pool_context():
    """The multiprocessing context campaigns run under.

    ``fork`` keeps workers cheap (no re-import) and is available on every
    POSIX platform this project targets; fall back to the platform default
    elsewhere.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :func:`run_shards` invocation."""

    #: All records of the campaign, keyed by shard key (recovered + fresh).
    records: Dict[str, TrialRecord]
    #: Shards actually executed by this invocation.
    executed: int
    #: Shards satisfied from the checkpoint file.
    resumed: int
    #: Foreign records found (and dropped at finalize) in the checkpoint.
    foreign: int
    path: Optional[Path]

    @property
    def total(self) -> int:
        return len(self.records)

    def results_by_key(self) -> Dict[str, Dict]:
        """``{shard key: result dict}`` — the aggregation-friendly view."""
        return {key: dict(r.result) for key, r in self.records.items()}


def run_shards(
    shards: Iterable[Shard],
    *,
    jobs: int = 1,
    out_path: Optional[Path | str] = None,
    resume: bool = True,
    include_meta: bool = True,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Execute a campaign (see module docstring for the lifecycle).

    Parameters
    ----------
    shards:
        The campaign's work units.  Keys must be unique.
    jobs:
        Worker processes.  ``1`` runs everything in-process with no pool —
        the sequential fallback used by tests and by library callers that
        cannot tolerate forking.
    out_path:
        JSONL checkpoint/output file.  ``None`` keeps everything in memory.
    resume:
        Recover completed shards from ``out_path`` before executing.
        ``False`` ignores (and overwrites) whatever is on disk.
    include_meta:
        Write worker/timing metadata into the JSONL records.  Disable to
        make the finalized file byte-identical across re-runs.
    progress:
        Optional callback ``(record, completed, total)`` fired per shard.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    shards = list(shards)
    plan = plan_resume(shards, out_path if resume else None)
    records: Dict[str, TrialRecord] = dict(plan.done)
    todo: Sequence[Shard] = plan.todo

    path = Path(out_path) if out_path is not None else None
    stream = None
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume else "w"
        stream = path.open(mode, encoding="utf-8")

    completed = len(records)
    try:
        if jobs == 1 or len(todo) <= 1:
            iterator = map(execute_shard, todo)
            for record in iterator:
                records[record.key] = record
                completed += 1
                if stream is not None:
                    stream.write(record.to_line(include_meta=include_meta) + "\n")
                    stream.flush()
                if progress is not None:
                    progress(record, completed, len(shards))
        else:
            ctx = _pool_context()
            with ctx.Pool(min(jobs, len(todo))) as pool:
                for record in pool.imap_unordered(execute_shard, todo, chunksize=1):
                    records[record.key] = record
                    completed += 1
                    if stream is not None:
                        stream.write(record.to_line(include_meta=include_meta) + "\n")
                        stream.flush()
                    if progress is not None:
                        progress(record, completed, len(shards))
    finally:
        if stream is not None:
            stream.close()

    if path is not None:
        # Canonicalize: key-sorted, current-campaign records only.
        write_records(path, records, include_meta=include_meta)
    return CampaignResult(
        records=records,
        executed=len(todo),
        resumed=len(plan.done),
        foreign=plan.foreign,
        path=path,
    )


def parallel_map(
    fn: Callable[[T], U], items: Iterable[T], *, jobs: int = 1
) -> List[U]:
    """Order-preserving map over a worker pool (sequential when ``jobs=1``).

    The generic sibling of :func:`run_shards` for work that produces live
    Python objects rather than JSONL records — e.g. the model checker's
    per-shard transition-graph fragments, which the parent merges before the
    SCC pass.  ``fn`` must be picklable (module-level).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    with ctx.Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items)
