"""Prior diners algorithms the paper positions itself against.

All three share the paper's model (shared-memory guarded commands, the same
``state``/``needs`` variables) so that every comparison in the benchmarks is
apples-to-apples:

* :class:`HygienicDiners` — Chandy–Misra priority-graph diners [5]:
  live without faults, but unbounded failure locality and not stabilizing;
* :class:`ChoySinghDiners` — dynamic-threshold diners [6, 7]:
  failure locality 2 (optimal) but not stabilizing;
* :class:`ForkOrderingDiners` — Dijkstra's resource-ordering diners [8]:
  deadlock-free without faults, unbounded locality, not stabilizing.

The paper's contribution (:class:`repro.core.NADiners`) is the only one of
the four that is simultaneously failure-local *and* stabilizing — which is
exactly what the benchmark suite demonstrates.
"""

from .choy_singh import ChoySinghDiners
from .fork_ordering import FORK_FREE, ForkOrderingDiners
from .hygienic import HygienicDiners

__all__ = ["ChoySinghDiners", "FORK_FREE", "ForkOrderingDiners", "HygienicDiners"]
