"""Choy–Singh style dynamic-threshold diners (the paper's references [6, 7]).

Choy and Singh proved that 2 is the minimum crash failure locality for
diners and gave (non-stabilizing) algorithms achieving it via the *dynamic
threshold* idea: a hungry process yields to its descendants whenever a
direct ancestor is itself hungry, so waiting chains never extend more than
two hops beyond a crashed process.

To keep the comparison apples-to-apples we express the baseline at the same
shared-memory granularity as the paper's program.  It is exactly the paper's
algorithm **minus the stabilization machinery** (no ``fixdepth``, no
``depth > D`` escape in ``exit``) — which is also precisely the
:class:`~repro.core.variants.NoFixdepthDiners` ablation.  The benchmarks can
therefore demonstrate the paper's positioning claim directly:

* crash locality 2 — same as the paper's program (E2);
* **not stabilizing** — a transient fault that forms a priority cycle
  blocks the cycle's processes forever (E3/E8).
"""

from __future__ import annotations

from ..core.variants import NoFixdepthDiners


class ChoySinghDiners(NoFixdepthDiners):
    """Dynamic-threshold diners with failure locality 2, not stabilizing.

    Behaviourally identical to the no-fixdepth ablation of the paper's
    program; kept as a distinct named class so benchmark output reads as the
    paper positions it (a prior algorithm, not an ablation).
    """

    name = "choy-singh"
