"""Dijkstra's classic fork-ordering diners (the paper's reference [8]).

The oldest deadlock-free solution: one fork per edge, a global total order
on forks, and hold-and-wait acquisition in ascending order.  A process eats
when it holds every incident fork and releases them all afterwards.

In the shared-memory model the fork on edge ``{p, q}`` is the edge variable,
taking one of three values: ``FORK_FREE``, ``p`` (p holds it), or ``q``.
The global order is the edge's index in a canonical enumeration.

Expected behaviour under the paper's fault models (what E2/E8 measure):

* deadlock-free and live without faults (the total order breaks cycles);
* **unbounded failure locality**: a process that crashes holding forks
  blocks its neighbours, who sit on their lower-ordered forks forever and
  transitively block *their* neighbours — starvation chains of any length;
* **not stabilizing**: an arbitrary state can violate the ascending-order
  discipline (each of two processes holding the fork the other needs),
  a permanent deadlock the algorithm has no mechanism to detect.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from ..core.state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_JOIN,
    VAR_NEEDS,
    VAR_STATE,
    DinerState,
)
from ..sim.domains import BoolDomain, Domain, FiniteDomain
from ..sim.process import ActionDef, Algorithm, ProcessView
from ..sim.topology import Edge, Pid, Topology, edge

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value

#: Sentinel: the fork lies on the table.
FORK_FREE = "<free>"

ACTION_ACQUIRE = "acquire"


class ForkOrderingDiners(Algorithm):
    """Resource-ordering diners: acquire incident forks in ascending order.

    Four actions per process ``p``:

    ``join``     ``needs ∧ state = T  →  state := H``
    ``acquire``  ``state = H ∧ the lowest-ordered fork p is missing is free ∧
                 p holds every lower-ordered incident fork  →  take it``
    ``enter``    ``state = H ∧ p holds all incident forks  →  state := E``
    ``exit``     ``state = E  →  state := T; release all incident forks``
    """

    name = "fork-ordering"
    hunger_variable = VAR_NEEDS

    def __init__(self) -> None:
        self._actions = (
            ActionDef(ACTION_JOIN, self._join_guard, self._join),
            ActionDef(ACTION_ACQUIRE, self._acquire_guard, self._acquire),
            ActionDef(ACTION_ENTER, self._enter_guard, self._enter),
            ActionDef(ACTION_EXIT, self._exit_guard, self._exit),
        )
        self._rank_cache: Dict[int, Dict[Edge, int]] = {}

    # ------------------------------------------------------- declarations

    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        return {
            VAR_STATE: FiniteDomain((T, H, E)),
            VAR_NEEDS: BoolDomain(),
        }

    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        order = {p: i for i, p in enumerate(topology.nodes)}
        p, q = sorted(e, key=lambda x: order[x])
        return FiniteDomain((FORK_FREE, p, q))

    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        return {VAR_STATE: T, VAR_NEEDS: False}

    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        return FORK_FREE

    def actions(self) -> Tuple[ActionDef, ...]:
        return self._actions

    # ----------------------------------------------------------- ordering

    def _ranks(self, topology: Topology) -> Dict[Edge, int]:
        """The canonical total order on forks (cached per topology)."""
        key = id(topology)
        if key not in self._rank_cache:
            order = {p: i for i, p in enumerate(topology.nodes)}
            ordered = sorted(
                topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))
            )
            self._rank_cache[key] = {e: i for i, e in enumerate(ordered)}
        return self._rank_cache[key]

    def _incident_in_order(self, view: ProcessView) -> List[Pid]:
        """Neighbours of the view's process, by ascending fork rank."""
        ranks = self._ranks(view.topology)
        return sorted(view.neighbors, key=lambda q: ranks[edge(view.pid, q)])

    # ------------------------------------------------------------ actions

    @staticmethod
    def _join_guard(view: ProcessView) -> bool:
        return bool(view.get(VAR_NEEDS)) and view.get(VAR_STATE) == T

    @staticmethod
    def _join(view: ProcessView) -> None:
        view.set(VAR_STATE, H)

    def _next_missing(self, view: ProcessView) -> Pid | None:
        """The neighbour across the lowest-ordered fork ``p`` does not hold,
        provided every lower-ordered incident fork is held; ``None`` when
        all forks are held or a lower fork is held by someone else."""
        for q in self._incident_in_order(view):
            if view.edge_value(q) != view.pid:
                return q
        return None

    def _acquire_guard(self, view: ProcessView) -> bool:
        if view.get(VAR_STATE) != H:
            return False
        q = self._next_missing(view)
        return q is not None and view.edge_value(q) == FORK_FREE

    def _acquire(self, view: ProcessView) -> None:
        q = self._next_missing(view)
        assert q is not None
        view.set_edge(q, view.pid)

    def _enter_guard(self, view: ProcessView) -> bool:
        return view.get(VAR_STATE) == H and all(
            view.edge_value(q) == view.pid for q in view.neighbors
        )

    @staticmethod
    def _enter(view: ProcessView) -> None:
        view.set(VAR_STATE, E)

    @staticmethod
    def _exit_guard(view: ProcessView) -> bool:
        return view.get(VAR_STATE) == E

    @staticmethod
    def _exit(view: ProcessView) -> None:
        view.set(VAR_STATE, T)
        for q in view.neighbors:
            if view.edge_value(q) == view.pid:  # release only forks we hold
                view.set_edge(q, FORK_FREE)
