"""Chandy–Misra style "hygienic" diners (the paper's reference [5]).

The essence of the hygienic algorithm, expressed at the same shared-memory
granularity as the paper's program: an acyclic priority graph over the
neighbour relation; a hungry process eats once every *conflicting* (hungry or
eating) neighbour is its descendant; after eating it demotes itself below all
neighbours.  This is the classic solution the paper builds on ("a well-known
idea of maintaining a partial order of priority among processes [5]").

What it deliberately lacks — and what the benchmarks show it costs:

* **no dynamic threshold** (``leave``): hungry processes wait on hungry
  ancestors indefinitely, so a single crashed process can starve a chain of
  processes of any length — failure locality grows with the topology;
* **no cycle breaking**: from an arbitrary initial state a priority cycle
  among hungry processes is a permanent deadlock — the algorithm is not
  stabilizing.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from ..core.state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_JOIN,
    VAR_NEEDS,
    VAR_STATE,
    DinerState,
)
from ..sim.domains import BoolDomain, Domain, FiniteDomain
from ..sim.process import ActionDef, Algorithm, ProcessView
from ..sim.topology import Edge, Pid, Topology

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value


class HygienicDiners(Algorithm):
    """Priority-graph diners without threshold or stabilization machinery.

    Three actions per process ``p``:

    ``join``   ``needs ∧ state = T  →  state := H``
    ``enter``  ``state = H ∧ (∀ neighbour q: state.q ≠ E) ∧
               (∀ hungry neighbour q: q is p's descendant)  →  state := E``
    ``exit``   ``state = E  →  state := T; demote below all neighbours``

    The edge-variable convention matches :class:`~repro.core.NADiners` (the
    stored identifier is the ancestor), so all priority-graph analysis code
    applies unchanged.
    """

    name = "hygienic"
    hunger_variable = VAR_NEEDS

    def __init__(self) -> None:
        self._actions = (
            ActionDef(ACTION_JOIN, self._join_guard, self._join),
            ActionDef(ACTION_ENTER, self._enter_guard, self._enter),
            ActionDef(ACTION_EXIT, self._exit_guard, self._exit),
        )

    # ------------------------------------------------------- declarations

    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        return {
            VAR_STATE: FiniteDomain((T, H, E)),
            VAR_NEEDS: BoolDomain(),
        }

    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        order = {p: i for i, p in enumerate(topology.nodes)}
        return FiniteDomain(tuple(sorted(e, key=lambda p: order[p])))

    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        return {VAR_STATE: T, VAR_NEEDS: False}

    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        order = {p: i for i, p in enumerate(topology.nodes)}
        return min(e, key=lambda p: order[p])

    def actions(self) -> Tuple[ActionDef, ...]:
        return self._actions

    # ------------------------------------------------------------ actions

    @staticmethod
    def _join_guard(view: ProcessView) -> bool:
        return bool(view.get(VAR_NEEDS)) and view.get(VAR_STATE) == T

    @staticmethod
    def _join(view: ProcessView) -> None:
        view.set(VAR_STATE, H)

    @staticmethod
    def _enter_guard(view: ProcessView) -> bool:
        if view.get(VAR_STATE) != H:
            return False
        for q in view.neighbors:
            state_q = view.peek(q, VAR_STATE)
            if state_q == E:
                return False
            if state_q == H and view.edge_value(q) != view.pid:
                # A hungry neighbour with priority over us blocks us.
                return False
        return True

    @staticmethod
    def _enter(view: ProcessView) -> None:
        view.set(VAR_STATE, E)

    @staticmethod
    def _exit_guard(view: ProcessView) -> bool:
        return view.get(VAR_STATE) == E

    @staticmethod
    def _exit(view: ProcessView) -> None:
        view.set(VAR_STATE, T)
        for q in view.neighbors:
            view.set_edge(q, q)
