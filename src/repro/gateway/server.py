"""The live gateway: few upstream sockets, many logical clients.

``GatewayServer`` is the asyncio front-end tier.  Downstream it offers
two faces — an in-process submit API (how the load generator drives 10⁴+
logical clients without 10⁴ sockets) and an optional TCP listener
speaking the same framed protocol, where many logical clients share one
downstream connection and requests carry the target ``node`` index.
Upstream it owns a small pool of TCP connections to the diner nodes
(``upstreams_per_node`` per node, total capped by ``max_upstreams``),
speaks the binary v3 hot-path frames, batches writes per
:class:`~repro.gateway.batch.FlushPolicy`, and survives node crashes by
abandoning in-flight operations (typed ``connection-lost`` failures) and
re-dialling with backoff.

All routing, admission, and fairness accounting lives in
:class:`~repro.gateway.mux.GatewayMux`; this module is only the
transport around it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.prom import Sample
from ..net.cluster import MetricsEndpoint
from ..net.codec import (
    Decoder,
    Frame,
    T_REQ,
    T_RSP,
    WIRE_BINARY_VERSION,
    CodecError,
    encode_frame,
    encode_hello,
    encode_request,
    encode_response,
)
from .admission import AdmissionConfig
from .batch import BatchWriter, FlushPolicy
from .mux import Completion, Decision, GatewayMux, retry_body

#: ``(host, port)`` of one node's client-facing socket.
Address = Tuple[str, int]


@dataclass(frozen=True)
class GatewayConfig:
    """One gateway instance: where the nodes are and how hard to push."""

    upstream_addrs: Sequence[Address]  #: index == mux node index
    node_labels: Optional[Sequence[str]] = None
    upstreams_per_node: int = 1
    max_upstreams: int = 8
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    upstream_flush: FlushPolicy = field(default_factory=FlushPolicy)
    downstream_flush: FlushPolicy = field(
        default_factory=lambda: FlushPolicy(max_delay_s=0.001)
    )
    gateway_id: str = "gw"
    listen_host: Optional[str] = None  #: enable the TCP front end
    listen_port: int = 0
    metrics_port: Optional[int] = None
    host: str = "127.0.0.1"
    reconnect_backoff_s: float = 0.05
    max_reconnect_backoff_s: float = 1.0

    def validate(self) -> None:
        if not self.upstream_addrs:
            raise ValueError("gateway needs at least one upstream node")
        total = len(self.upstream_addrs) * self.upstreams_per_node
        if total > self.max_upstreams:
            raise ValueError(
                f"{total} upstream connections exceed the budget of "
                f"{self.max_upstreams} (nodes x upstreams_per_node)"
            )
        self.admission.validate()
        self.upstream_flush.validate()
        self.downstream_flush.validate()


class _Upstream:
    """One pooled connection slot: socket, batcher, reader task."""

    __slots__ = (
        "slot", "addr", "reader", "writer", "batch", "task", "connected",
        "dials",
    )

    def __init__(self, slot: int, addr: Address) -> None:
        self.slot = slot
        self.addr = addr
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.batch: Optional[BatchWriter] = None
        self.task: Optional[asyncio.Task] = None
        self.connected = asyncio.Event()
        self.dials = 0


class _Downstream:
    """One front-end TCP connection carrying many logical clients."""

    __slots__ = ("name", "writer", "batch", "decoder")

    def __init__(self, name: str, writer: asyncio.StreamWriter,
                 batch: BatchWriter) -> None:
        self.name = name
        self.writer = writer
        self.batch = batch
        self.decoder = Decoder()


class GatewayServer:
    """The running gateway: upstream pool + optional TCP front end."""

    def __init__(self, config: GatewayConfig) -> None:
        config.validate()
        self.config = config
        labels = (
            list(config.node_labels)
            if config.node_labels is not None
            else [str(i) for i in range(len(config.upstream_addrs))]
        )
        self.mux = GatewayMux(
            labels,
            upstreams_per_node=config.upstreams_per_node,
            admission=config.admission,
            gateway_id=config.gateway_id,
        )
        self._upstreams: List[_Upstream] = [
            _Upstream(slot, config.upstream_addrs[node_index])
            for slot, node_index in enumerate(self.mux.slot_node)
        ]
        #: gateway req_id -> in-process completion callback
        self._local: Dict[str, Callable[[Completion], None]] = {}
        #: gateway req_id -> (downstream, original id, binary?)
        self._remote: Dict[str, Tuple[_Downstream, Any, bool]] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics: Optional[MetricsEndpoint] = None
        self.listen_port: Optional[int] = None
        self.metrics_port: Optional[int] = None
        self._running = False
        self._t0: Optional[float] = None
        self.downstream_conns = 0
        self.junk_frames = 0

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Dial every upstream slot; open the front end if configured."""
        self._running = True
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        dials = [self._dial(u) for u in self._upstreams]
        await asyncio.gather(*dials)
        for upstream in self._upstreams:
            upstream.task = asyncio.create_task(self._upstream_loop(upstream))
        cfg = self.config
        if cfg.listen_host is not None:
            self._server = await asyncio.start_server(
                self._serve_downstream, cfg.listen_host, cfg.listen_port
            )
            self.listen_port = self._server.sockets[0].getsockname()[1]
        if cfg.metrics_port is not None:
            self._metrics = MetricsEndpoint(
                self.live_samples, cfg.host, cfg.metrics_port
            )
            self.metrics_port = await self._metrics.start()

    async def stop(self) -> None:
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics is not None:
            await self._metrics.close()
            self._metrics = None
        for upstream in self._upstreams:
            if upstream.task is not None:
                upstream.task.cancel()
        for upstream in self._upstreams:
            if upstream.task is not None:
                try:
                    await upstream.task
                except (asyncio.CancelledError, Exception):
                    pass
                upstream.task = None
            if upstream.batch is not None:
                upstream.batch.close()
            if upstream.writer is not None:
                upstream.writer.close()
                upstream.writer = None
        loop = asyncio.get_running_loop()
        for slot in range(len(self._upstreams)):
            for completion in self.mux.abandon(slot, loop.time()):
                self._route(completion)

    async def _dial(self, upstream: _Upstream) -> None:
        cfg = self.config
        backoff = cfg.reconnect_backoff_s
        while self._running or upstream.dials == 0:
            try:
                reader, writer = await asyncio.open_connection(*upstream.addr)
            except OSError:
                if not self._running:
                    return
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, cfg.max_reconnect_backoff_s)
                continue
            upstream.dials += 1
            upstream.writer = writer
            upstream.batch = BatchWriter(writer, cfg.upstream_flush)
            writer.write(
                encode_hello(
                    f"{cfg.gateway_id}/u{upstream.slot}", role="client"
                )
            )
            upstream.connected.set()
            upstream.reader = reader
            return
        raise OSError("gateway stopped before upstream connected")

    async def _upstream_loop(self, upstream: _Upstream) -> None:
        """Read responses; on death, abandon in-flight and re-dial."""
        loop = asyncio.get_running_loop()
        while self._running:
            reader = upstream.reader
            if reader is None:
                return
            decoder = Decoder()
            try:
                while True:
                    data = await reader.read(65536)
                    if not data:
                        break
                    for frame in decoder.feed(data):
                        self._on_upstream_frame(frame)
            except (ConnectionError, OSError):
                pass
            upstream.connected.clear()
            if upstream.batch is not None:
                upstream.batch.close()
                upstream.batch = None
            if upstream.writer is not None:
                upstream.writer.close()
                upstream.writer = None
            for completion in self.mux.abandon(upstream.slot, loop.time()):
                self._route(completion)
            if not self._running:
                return
            try:
                await self._dial(upstream)
            except OSError:
                return

    # ----------------------------------------------------------- responses

    def _on_upstream_frame(self, frame: Frame) -> None:
        if frame.type != T_RSP or not isinstance(frame.body, dict):
            self.junk_frames += 1
            return
        body = frame.body
        req_id = body.get("id")
        if not isinstance(req_id, str):
            self.junk_frames += 1
            return
        loop = asyncio.get_running_loop()
        completion = self.mux.resolve(
            req_id,
            bool(body.get("ok")),
            loop.time(),
            error=body.get("error"),
            retry_after_s=float(body.get("retry_after_s") or 0.0),
        )
        if completion is not None:
            self._route(completion)

    def _route(self, completion: Completion) -> None:
        callback = self._local.pop(completion.req_id, None)
        if callback is not None:
            callback(completion)
            return
        remote = self._remote.pop(completion.req_id, None)
        if remote is not None:
            downstream, original_id, binary = remote
            self._respond_downstream(
                downstream,
                original_id,
                completion.op,
                completion.ok,
                error=completion.error,
                retry_after_s=completion.retry_after_s,
                binary=binary,
            )

    # ------------------------------------------------------ in-process API

    def submit(
        self,
        client: str,
        node: int,
        op: str,
        callback: Callable[[Completion], None],
    ) -> Optional[Decision]:
        """Submit one logical-client operation from in-process.

        Returns the shed :class:`Decision` when admission refuses (the
        callback is *not* invoked); returns ``None`` when the operation
        went upstream — the callback fires with its completion, including
        the typed ``connection-lost`` failure if the pipe dies.
        """
        loop = asyncio.get_running_loop()
        decision = self.mux.submit(client, node, op, loop.time())
        if not decision.admitted:
            return decision
        upstream = self._upstreams[decision.upstream]
        if upstream.batch is None:
            self._local[decision.req_id] = callback  # abandon() routes it
            for completion in self.mux.abandon(decision.upstream, loop.time()):
                self._route(completion)
            return None
        self._local[decision.req_id] = callback
        upstream.batch.send(encode_request(op, decision.req_id))
        return None

    async def request(self, client: str, node: int, op: str) -> Completion:
        """One operation as a coroutine — convenience over :meth:`submit`."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _done(completion: Completion) -> None:
            if not future.done():
                future.set_result(completion)

        decision = self.submit(client, node, op, _done)
        if decision is not None:
            return Completion(
                client=client, node=node, op=op, req_id="",
                ok=False, wait_s=0.0, error=retry_body(decision)["error"],
                retry_after_s=decision.retry_after_s,
            )
        return await future

    def flush(self) -> None:
        """Force every per-connection batch onto the wire now."""
        for upstream in self._upstreams:
            if upstream.batch is not None:
                upstream.batch.flush()

    # ------------------------------------------------------- TCP front end

    async def _serve_downstream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.downstream_conns += 1
        downstream = _Downstream(
            f"ds{self.downstream_conns}",
            writer,
            BatchWriter(writer, self.config.downstream_flush),
        )
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for frame in downstream.decoder.feed(data):
                    self._on_downstream_frame(downstream, frame)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            downstream.batch.close()
            writer.close()
            dead = [
                req_id
                for req_id, (ds, _, _) in self._remote.items()
                if ds is downstream
            ]
            for req_id in dead:
                # The client is gone; the response (if any) has nowhere to
                # go, but the upstream op must still settle accounting.
                self._remote.pop(req_id, None)

    def _on_downstream_frame(
        self, downstream: _Downstream, frame: Frame
    ) -> None:
        if frame.is_hello:
            return  # identity is per-request on a multiplexed pipe
        if frame.type != T_REQ or not isinstance(frame.body, dict):
            self.junk_frames += 1
            return
        body = frame.body
        op = str(body.get("op"))
        original_id = body.get("id")
        node = body.get("node")
        binary = frame.version == WIRE_BINARY_VERSION
        if not isinstance(original_id, str) or not isinstance(node, int):
            self._respond_downstream(
                downstream, original_id, op, False,
                error="bad-request", binary=False,
            )
            return
        # The logical client is the id's stem (``client.seq`` by
        # convention) — admission fairness needs an identity that is
        # stable across a client's requests, not per-request.
        client = original_id.rsplit(".", 1)[0]
        loop = asyncio.get_running_loop()
        decision = self.mux.submit(client, node, op, loop.time())
        if not decision.admitted:
            self._respond_downstream(
                downstream, original_id, op, False,
                error=retry_body(decision)["error"],
                retry_after_s=decision.retry_after_s,
                binary=binary,
            )
            return
        upstream = self._upstreams[decision.upstream]
        self._remote[decision.req_id] = (downstream, original_id, binary)
        if upstream.batch is None:
            for completion in self.mux.abandon(decision.upstream, loop.time()):
                self._route(completion)
            return
        upstream.batch.send(encode_request(op, decision.req_id))

    def _respond_downstream(
        self,
        downstream: _Downstream,
        original_id: Any,
        op: str,
        ok: bool,
        *,
        error: Optional[str] = None,
        retry_after_s: float = 0.0,
        binary: bool = False,
    ) -> None:
        if downstream.batch.closed:
            return
        frame: Optional[bytes] = None
        if binary:
            try:
                frame = encode_response(
                    op, original_id, ok, error=error,
                    retry_after_s=retry_after_s or None,
                )
            except CodecError:
                frame = None
        if frame is None:
            body: Dict[str, Any] = {"op": op, "id": original_id, "ok": ok}
            if error:
                body["error"] = error
            if retry_after_s:
                body["retry_after_s"] = retry_after_s
            frame = encode_frame(T_RSP, body)
        downstream.batch.send(frame)

    # -------------------------------------------------------------- gauges

    def batch_counters(self) -> Dict[str, Any]:
        frames = sum(
            u.batch.frames_out for u in self._upstreams if u.batch is not None
        )
        flushes = sum(
            u.batch.flushes for u in self._upstreams if u.batch is not None
        )
        return {
            "upstream_frames": frames,
            "upstream_flushes": flushes,
            "mean_batch": frames / flushes if flushes else 0.0,
            "dials": sum(u.dials for u in self._upstreams),
        }

    def live_samples(self) -> List[Sample]:
        loop = asyncio.get_running_loop()
        uptime = 0.0 if self._t0 is None else round(loop.time() - self._t0, 6)
        batch = self.batch_counters()
        samples = [
            Sample("repro_gateway_uptime_seconds", uptime,
                   help="Seconds since the gateway started"),
            Sample("repro_gateway_upstreams",
                   float(sum(1 for u in self._upstreams if u.connected.is_set())),
                   help="Connected upstream sockets"),
            Sample("repro_gateway_batch_frames_total",
                   float(batch["upstream_frames"]), kind="counter",
                   help="Frames batched onto upstream sockets"),
            Sample("repro_gateway_batch_flushes_total",
                   float(batch["upstream_flushes"]), kind="counter",
                   help="Batch writes issued upstream"),
            Sample("repro_gateway_downstream_conns",
                   float(self.downstream_conns), kind="counter",
                   help="Front-end TCP connections accepted"),
        ]
        samples.extend(self.mux.samples())
        return samples
