"""The gateway multiplexer: route, admit, account — no sockets.

``GatewayMux`` is the pure data plane of the gateway: it maps logical
clients onto upstream connection slots, allocates compact request ids,
applies :class:`~repro.gateway.admission.AdmissionController` windows,
tracks every in-flight operation, and turns upstream responses back into
per-client completions with measured waits.  It is deliberately
transport-free — the live :class:`~repro.gateway.server.GatewayServer`
drives it from asyncio callbacks, the virtual-time load generator drives
it from a heap, and the ``gateway/mux`` perf kernel drives it in a tight
loop — all three see identical decisions.

Topology model: the mux addresses nodes by *index* (the u16 ``node``
field of a binary v3 request); each node owns ``upstreams_per_node``
connection slots, used round-robin, so one hot node can spread over a
few pipes while the total stays within the configured connection budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.prom import Sample
from .admission import AdmissionConfig, AdmissionController, RETRY_ERROR

#: The error a completion carries when its upstream connection died.
LOST_ERROR = "connection-lost"


@dataclass(frozen=True)
class Decision:
    """The outcome of one ``submit``: admitted-and-routed, or shed."""

    admitted: bool
    client: str
    node: int
    op: str
    req_id: Optional[str] = None  #: set when admitted
    upstream: int = -1  #: connection slot when admitted
    reason: Optional[str] = None  #: typed shed reason otherwise
    retry_after_s: float = 0.0


@dataclass(frozen=True)
class Completion:
    """One finished operation, routed back to its logical client."""

    client: str
    node: int
    op: str
    req_id: str
    ok: bool
    wait_s: float
    error: Optional[str] = None
    retry_after_s: float = 0.0


@dataclass(frozen=True)
class _Pending:
    client: str
    node: int
    op: str
    upstream: int
    at: float


class GatewayMux:
    """Routing + admission + accounting for one gateway instance."""

    def __init__(
        self,
        nodes: Sequence[Any],
        *,
        upstreams_per_node: int = 1,
        admission: AdmissionConfig = AdmissionConfig(),
        gateway_id: str = "gw",
    ) -> None:
        if not nodes:
            raise ValueError("gateway needs at least one node")
        if upstreams_per_node < 1:
            raise ValueError("upstreams_per_node must be >= 1")
        self.nodes = list(nodes)
        self.gateway_id = gateway_id
        self.admission = AdmissionController(admission)
        #: slot -> node index; slots are dense, grouped per node.
        self.slot_node: List[int] = []
        self._node_slots: List[List[int]] = []
        for index in range(len(self.nodes)):
            slots = []
            for _ in range(upstreams_per_node):
                slots.append(len(self.slot_node))
                self.slot_node.append(index)
            self._node_slots.append(slots)
        self._rr: List[int] = [0] * len(self.nodes)
        self._pending: Dict[str, _Pending] = {}
        self._seq = 0
        self.grants = 0
        self.failures = 0
        self.unmatched = 0

    @property
    def upstream_count(self) -> int:
        return len(self.slot_node)

    # ------------------------------------------------------------- submit

    def submit(self, client: str, node: int, op: str, now: float) -> Decision:
        """Route one logical-client operation, or shed it.

        An admitted decision names the upstream slot and the allocated
        request id — the transport encodes exactly that id upstream, and
        :meth:`resolve` matches the response back by it.
        """
        if not 0 <= node < len(self.nodes):
            return Decision(
                admitted=False, client=client, node=node, op=op,
                reason="bad-node",
            )
        slots = self._node_slots[node]
        slot = slots[self._rr[node] % len(slots)]
        self._rr[node] += 1
        reason = self.admission.try_admit(client, node, slot, op)
        if reason is not None:
            return Decision(
                admitted=False, client=client, node=node, op=op,
                reason=reason,
                retry_after_s=self.admission.config.retry_after_s,
            )
        self._seq += 1
        req_id = f"{self.gateway_id}.{self._seq:x}"
        self._pending[req_id] = _Pending(client, node, op, slot, now)
        return Decision(
            admitted=True, client=client, node=node, op=op,
            req_id=req_id, upstream=slot,
        )

    # ------------------------------------------------------------ resolve

    def resolve(
        self,
        req_id: str,
        ok: bool,
        now: float,
        *,
        error: Optional[str] = None,
        retry_after_s: float = 0.0,
    ) -> Optional[Completion]:
        """Match an upstream response; ``None`` for unknown/duplicate ids."""
        entry = self._pending.pop(req_id, None)
        if entry is None:
            self.unmatched += 1
            return None
        self.admission.settle(entry.client, entry.node, entry.upstream, entry.op)
        if ok and entry.op == "acquire":
            self.grants += 1
        elif not ok:
            self.failures += 1
        return Completion(
            client=entry.client,
            node=entry.node,
            op=entry.op,
            req_id=req_id,
            ok=ok,
            wait_s=max(0.0, now - entry.at),
            error=error,
            retry_after_s=retry_after_s,
        )

    def abandon(self, upstream: int, now: float) -> List[Completion]:
        """Fail everything in flight on a dead upstream connection."""
        dead = [
            req_id
            for req_id, entry in self._pending.items()
            if entry.upstream == upstream
        ]
        return [
            completion
            for req_id in dead
            if (
                completion := self.resolve(
                    req_id, False, now, error=LOST_ERROR
                )
            )
            is not None
        ]

    # ------------------------------------------------------------- gauges

    def pending_count(self) -> int:
        return len(self._pending)

    def holders(self) -> List[Tuple[str, int]]:
        """``(req_id, node)`` of pending ops, for drain/diagnostics."""
        return [(r, e.node) for r, e in self._pending.items()]

    def counters(self) -> Dict[str, Any]:
        adm = self.admission
        return {
            "admitted": adm.admitted,
            "completed": adm.completed,
            "grants": self.grants,
            "failures": self.failures,
            "unmatched": self.unmatched,
            "pending": len(self._pending),
            "shed": dict(adm.shed),
            "clients": len(adm.client_admitted),
        }

    def samples(self) -> List[Sample]:
        """The gateway's mux gauges, ``/metrics``-ready."""
        adm = self.admission
        samples = [
            Sample(
                "repro_gateway_pending", float(len(self._pending)),
                kind="gauge", help="Operations in flight through the mux",
            ),
            Sample(
                "repro_gateway_admitted_total", float(adm.admitted),
                kind="counter", help="Operations admitted upstream",
            ),
            Sample(
                "repro_gateway_grants_total", float(self.grants),
                kind="counter", help="Acquire grants routed back",
            ),
            Sample(
                "repro_gateway_clients", float(len(adm.client_admitted)),
                kind="gauge", help="Logical clients seen",
            ),
        ]
        for reason, count in sorted(adm.shed.items()):
            samples.append(
                Sample(
                    "repro_gateway_shed_total", float(count),
                    labels={"reason": reason}, kind="counter",
                    help="Admissions refused with a typed RETRY",
                )
            )
        for index, node in enumerate(self.nodes):
            samples.append(
                Sample(
                    "repro_gateway_queue_depth",
                    float(adm.queue_depth(index)),
                    labels={"node": str(node)}, kind="gauge",
                    help="Un-granted acquires parked at the node",
                )
            )
        for slot, node_index in enumerate(self.slot_node):
            samples.append(
                Sample(
                    "repro_gateway_upstream_in_flight",
                    float(adm.in_flight(slot)),
                    labels={
                        "slot": str(slot),
                        "node": str(self.nodes[node_index]),
                    },
                    kind="gauge",
                    help="Operations outstanding on the upstream pipe",
                )
            )
        return samples


def retry_body(decision: Decision) -> Dict[str, Any]:
    """The typed RETRY response body for a shed decision.

    Shape-compatible with a node's refusal so clients handle both with
    one code path; ``error`` is the literal ``"retry"`` and the shed
    reason rides in ``shed``.
    """
    return {
        "op": decision.op,
        "ok": False,
        "error": RETRY_ERROR,
        "shed": decision.reason,
        "retry_after_s": decision.retry_after_s,
    }
