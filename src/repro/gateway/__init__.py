"""The lock-service gateway tier.

A thin front-end that multiplexes many logical clients over a small
pool of upstream TCP connections to the diner nodes: binary v3 framing
on the hot path, per-connection write batching, and admission control
with typed RETRY shedding.  The ``loadgen`` module drives 10⁴–10⁶
logical clients through it — live over real sockets, or as a seeded
virtual-time simulation whose report is byte-stable.
"""

from .admission import (
    RETRY_ERROR,
    SHED_CLIENT_WINDOW,
    SHED_IN_FLIGHT,
    SHED_QUEUE_FULL,
    SHED_REASONS,
    AdmissionConfig,
    AdmissionController,
)
from .batch import BatchWriter, FlushPolicy
from .loadgen import (
    FleetStats,
    LoadgenConfig,
    coefficient_of_variation,
    run_live,
    run_sim,
)
from .mux import LOST_ERROR, Completion, Decision, GatewayMux, retry_body
from .report import (
    LOADGEN_FORMAT_VERSION,
    LOADGEN_REPORT_KIND,
    build_report,
    read_loadgen_report,
    thin_samples,
    write_loadgen_report,
)
from .server import GatewayConfig, GatewayServer

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BatchWriter",
    "Completion",
    "Decision",
    "FleetStats",
    "FlushPolicy",
    "GatewayConfig",
    "GatewayMux",
    "GatewayServer",
    "LOADGEN_FORMAT_VERSION",
    "LOADGEN_REPORT_KIND",
    "LOST_ERROR",
    "LoadgenConfig",
    "RETRY_ERROR",
    "SHED_CLIENT_WINDOW",
    "SHED_IN_FLIGHT",
    "SHED_QUEUE_FULL",
    "SHED_REASONS",
    "build_report",
    "coefficient_of_variation",
    "read_loadgen_report",
    "retry_body",
    "run_live",
    "run_sim",
    "thin_samples",
    "write_loadgen_report",
]
