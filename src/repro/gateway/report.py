"""The versioned, byte-stable ``loadgen-report.json`` artefact.

One load-generator run produces one report document: the full generator
spec (so the run is reproducible from the artefact alone), grant-latency
percentiles, the cross-client fairness CV, admission/shed/batch
counters, the safety audit, and a bounded set of exact latency samples
for downstream SLO evaluation.

Discipline matches every other artefact in the repo: ``kind``-tagged and
format-versioned, keys sorted, floats rounded to 6 decimal places,
written atomically with an fsync.  In ``--sim`` mode the whole document
is a pure function of (topology, seed, duration) — two runs with the
same spec are byte-identical, and CI ``cmp``s them.  A live run has real
wall-clock latencies in it; its *format* is canonical but its numbers
are the hardware's.

The sample cap keeps a 10⁶-client report small: when a run collects more
grant waits than ``LATENCY_SAMPLE_CAP``, the sorted samples are thinned
by a deterministic stride (every k-th), which preserves the empirical
distribution — and therefore any percentile — to within 1/cap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

LOADGEN_FORMAT_VERSION = 1
LOADGEN_REPORT_KIND = "loadgen-report"

#: Exact per-grant samples kept in the report (global and per node).
LATENCY_SAMPLE_CAP = 20000
PER_NODE_SAMPLE_CAP = 5000


def _round6(value: Any) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    if isinstance(value, int):
        return value
    return round(float(value), 6)


def _canonical(value: Any) -> Any:
    """Rounded floats, recursively — the byte-stability workhorse."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return _round6(value)


def thin_samples(sorted_samples: List[float], cap: int) -> List[float]:
    """At most ``cap`` of the sorted samples, by deterministic stride.

    Keeps the extremes: the first element always survives and the last is
    appended when the stride would drop it, so min/max stay exact.
    """
    n = len(sorted_samples)
    if n <= cap:
        return list(sorted_samples)
    stride = (n + cap - 1) // cap
    thinned = sorted_samples[::stride]
    if thinned[-1] != sorted_samples[-1]:
        thinned.append(sorted_samples[-1])
    return thinned


def build_report(spec: Dict[str, Any], results: Dict[str, Any]) -> Dict[str, Any]:
    """The complete report document from a spec and raw results."""
    from .. import version

    return _canonical(
        {
            "format": LOADGEN_FORMAT_VERSION,
            "kind": LOADGEN_REPORT_KIND,
            "source": LOADGEN_REPORT_KIND,
            "repro": version(),
            "spec": spec,
            "results": results,
        }
    )


def write_loadgen_report(path: Path | str, report: Dict[str, Any]) -> Path:
    """The byte-stable report document (atomic replace, fsynced)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = json.dumps(_canonical(report), sort_keys=True, indent=2) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def read_loadgen_report(path: Path | str) -> Dict[str, Any]:
    """Parse a report document; :class:`ValueError` if it is not one."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON") from exc
    if not isinstance(doc, dict) or doc.get("kind") != LOADGEN_REPORT_KIND:
        raise ValueError(f"{path}: not a loadgen-report document")
    if not isinstance(doc.get("format"), int):
        raise ValueError(f"{path}: loadgen-report without a format version")
    if doc["format"] > LOADGEN_FORMAT_VERSION:
        raise ValueError(
            f"{path}: loadgen-report format {doc['format']} is newer than "
            f"this tool ({LOADGEN_FORMAT_VERSION})"
        )
    if not isinstance(doc.get("results"), dict):
        raise ValueError(f"{path}: loadgen-report without results")
    return doc
