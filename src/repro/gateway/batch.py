"""Frame batching: coalesce many small frames into few socket writes.

A gateway pushing one 25-byte binary frame per ``write()`` spends more
time in syscalls than in the codec.  ``BatchWriter`` buffers encoded
frames per connection and flushes them as one contiguous write when any
limb of the :class:`FlushPolicy` trips:

* ``max_frames`` buffered frames,
* ``max_bytes`` buffered bytes,
* ``max_delay_s`` since the oldest buffered frame (a timer armed on the
  first frame of a batch — a lone frame never waits longer than this).

The policy is per-connection: a hot upstream pipe wants large batches,
a latency-sensitive downstream reply path wants a short delay cap.  The
writer never reorders frames and flushes synchronously on close, so the
batching layer is invisible to the protocol above it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class FlushPolicy:
    """When a buffered batch goes on the wire."""

    max_frames: int = 64
    max_bytes: int = 32768
    max_delay_s: float = 0.002

    def validate(self) -> None:
        if self.max_frames < 1:
            raise ValueError("max_frames must be >= 1")
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")


class BatchWriter:
    """Coalesces frames onto one ``asyncio.StreamWriter``.

    Counters (``frames_out``, ``flushes``, ``bytes_out``) feed the
    gateway's gauges; ``mean_batch`` is the achieved coalescing factor —
    the number every batching knob ultimately moves.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        policy: FlushPolicy = FlushPolicy(),
    ) -> None:
        policy.validate()
        self._writer = writer
        self.policy = policy
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self.frames_out = 0
        self.flushes = 0
        self.bytes_out = 0
        self.closed = False

    # -------------------------------------------------------------- sending

    def send(self, frame: bytes) -> None:
        """Buffer one encoded frame; flush if a policy limb trips."""
        if self.closed:
            return
        self._pending.append(frame)
        self._pending_bytes += len(frame)
        policy = self.policy
        if (
            len(self._pending) >= policy.max_frames
            or self._pending_bytes >= policy.max_bytes
        ):
            self.flush()
        elif self._timer is None and policy.max_delay_s > 0:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(policy.max_delay_s, self.flush)
        elif policy.max_delay_s == 0:
            self.flush()

    def flush(self) -> None:
        """Put the buffered batch on the wire now (idempotent)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending or self.closed:
            return
        batch = b"".join(self._pending)
        count = len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        try:
            self._writer.write(batch)
        except (ConnectionError, OSError, RuntimeError):
            self.closed = True
            return
        self.frames_out += count
        self.flushes += 1
        self.bytes_out += len(batch)

    async def drain(self) -> None:
        """Flush and apply the transport's backpressure."""
        self.flush()
        try:
            await self._writer.drain()
        except (ConnectionError, OSError):
            self.closed = True

    def close(self) -> None:
        self.flush()
        self.closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -------------------------------------------------------------- gauges

    @property
    def pending_frames(self) -> int:
        return len(self._pending)

    @property
    def mean_batch(self) -> float:
        return self.frames_out / self.flushes if self.flushes else 0.0
