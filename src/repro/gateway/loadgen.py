"""``repro loadgen``: a closed/open-loop fleet of logical clients.

One run drives ``clients`` logical clients through the gateway and
reports grant-latency percentiles (p50/p99/p999 via the repo's
``Timer``/``Histogram`` merge), a cross-client fairness CV, shed/retry
accounting, and — in live mode — the neighbour-exclusion safety audit
over the cluster's event stream.

Two engines share the fleet logic and the report format:

* **sim** — a virtual-time, discrete-event twin.  The *real*
  :class:`~repro.gateway.mux.GatewayMux` and admission controller make
  every routing/shed decision; only the transport and the diner are
  modelled (fixed network delay, exponential holds, FIFO grants per
  node).  Everything is seeded, so the report is **byte-stable**: same
  (topology, seed, duration) → identical bytes.  This is how 10⁶
  clients fit in one process, and how CI pins the artefact.
* **live** — a real :class:`~repro.net.cluster.ClusterSupervisor` (with
  chaos, if asked) behind a real :class:`~repro.gateway.server.
  GatewayServer` over TCP.  Latencies are wall-clock; the safety audit
  runs over the emitted grant/release stream exactly as ``soak`` does.

The fleet is driven from one coroutine with a timer heap — no
task-per-client — so 10⁴ clients cost one loop, not 10⁴ stacks.

Closed loop: each client cycles acquire → hold → release → think, with
exponential think/hold times from its own seeded RNG.  Open loop:
arrivals form a seeded Poisson process at ``arrival_rate_hz`` total,
assigned to clients uniformly at random.  A shed (typed RETRY) is
retried after the server's ``retry_after_s`` hint plus seeded jitter, up
to ``max_retries`` per cycle.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import Histogram, Timer
from .admission import AdmissionConfig
from .batch import FlushPolicy
from .mux import Completion, GatewayMux
from .report import (
    LATENCY_SAMPLE_CAP,
    PER_NODE_SAMPLE_CAP,
    build_report,
    thin_samples,
)

#: Sim-mode transport model: one-way network delay and grant overhead.
SIM_NET_DELAY_S = 0.0005
SIM_GRANT_OVERHEAD_S = 0.0002

#: Seeded RNG streams are pooled: a ``random.Random`` carries ~2.5 KB of
#: Mersenne state, so one per client would cost gigabytes at 10⁶ clients.
#: Clients share ``pool[i % RNG_POOL_SIZE]``; the event order is already
#: deterministic, so pooling preserves byte-stability.
RNG_POOL_SIZE = 4096


def _rng_pool(seed: int, clients: int) -> List[random.Random]:
    size = min(clients, RNG_POOL_SIZE)
    return [
        random.Random(seed * 1_000_003 + i + 1) for i in range(size)
    ]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generator run, engine-agnostic."""

    clients: int = 10000
    nodes: int = 3
    topology: str = "ring"
    seed: int = 1
    duration_s: float = 5.0
    mode: str = "closed"  #: ``closed`` (think time) or ``open`` (Poisson)
    arrival_rate_hz: float = 2000.0  #: open-loop aggregate arrival rate
    think_s: float = 0.5  #: closed-loop mean think time
    hold_s: float = 0.01  #: mean lock-hold time
    max_retries: int = 8  #: shed retries per acquire cycle
    upstreams_per_node: int = 1
    max_upstreams: int = 8
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    flush: FlushPolicy = field(default_factory=FlushPolicy)
    gateway_id: str = "gw"

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mode == "open" and self.arrival_rate_hz <= 0:
            raise ValueError("open loop needs arrival_rate_hz > 0")
        if self.think_s < 0 or self.hold_s < 0:
            raise ValueError("think_s/hold_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.upstreams_per_node < 1:
            raise ValueError("upstreams_per_node must be >= 1")
        total = self.nodes * self.upstreams_per_node
        if total > self.max_upstreams:
            raise ValueError(
                f"{total} upstream connections exceed budget of "
                f"{self.max_upstreams} (nodes x upstreams_per_node)"
            )
        self.admission.validate()
        self.flush.validate()

    def spec_doc(self, engine: str) -> Dict[str, Any]:
        """The reproducibility half of the report."""
        adm = self.admission
        flush = self.flush
        return {
            "engine": engine,
            "clients": self.clients,
            "nodes": self.nodes,
            "topology": self.topology,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "mode": self.mode,
            "arrival_rate_hz": self.arrival_rate_hz,
            "think_s": self.think_s,
            "hold_s": self.hold_s,
            "max_retries": self.max_retries,
            "gateway": {
                "id": self.gateway_id,
                "upstreams_per_node": self.upstreams_per_node,
                "max_upstreams": self.max_upstreams,
                "admission": {
                    "max_per_client": adm.max_per_client,
                    "max_queue_depth": adm.max_queue_depth,
                    "max_in_flight": adm.max_in_flight,
                    "retry_after_s": adm.retry_after_s,
                },
                "flush": {
                    "max_frames": flush.max_frames,
                    "max_bytes": flush.max_bytes,
                    "max_delay_s": flush.max_delay_s,
                },
            },
        }


def coefficient_of_variation(values: List[float]) -> float:
    """Population CV (stdev/mean); 0 for empty or zero-mean input."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return (variance ** 0.5) / abs(mean)


class FleetStats:
    """Per-client and per-node accounting shared by both engines."""

    def __init__(self, clients: int, node_labels: List[str]) -> None:
        self.node_labels = node_labels
        self.grant_counts = [0] * clients
        self.wait_sums = [0.0] * clients
        self.sheds = [0] * clients
        self.retries = [0] * clients
        self.failures = [0] * clients
        self.active = [False] * clients
        self.abandoned = 0
        self.releases = 0
        self.node_timers: Dict[str, Timer] = {
            label: Timer(f"grant-wait/{label}") for label in node_labels
        }
        self.histogram = Histogram("grant-wait-ms")

    def issued(self, client: int) -> None:
        self.active[client] = True

    def grant(self, client: int, node_label: str, wait_s: float) -> None:
        self.grant_counts[client] += 1
        self.wait_sums[client] += wait_s
        self.node_timers[node_label].observe(wait_s)
        self.histogram.observe(round(wait_s * 1000.0, 1))

    def shed(self, client: int) -> None:
        self.sheds[client] += 1

    def merged_timer(self) -> Timer:
        merged = Timer("grant-wait")
        for timer in self.node_timers.values():
            merged.merge(timer)
        return merged

    # ------------------------------------------------------------- results

    def results_doc(
        self,
        duration_s: float,
        mux: GatewayMux,
        *,
        batching: Dict[str, Any],
        safety: Dict[str, Any],
    ) -> Dict[str, Any]:
        merged = self.merged_timer()
        samples = sorted(merged.samples)
        latency: Dict[str, Any] = {"count": merged.count}
        if samples:
            latency.update(
                p50_s=_pct(samples, 0.50),
                p99_s=_pct(samples, 0.99),
                p999_s=_pct(samples, 0.999),
                mean_s=merged.total / merged.count,
                min_s=samples[0],
                max_s=samples[-1],
            )
        per_node: Dict[str, Any] = {}
        for label in self.node_labels:
            timer = self.node_timers[label]
            node_samples = sorted(timer.samples)
            doc: Dict[str, Any] = {"grants": timer.count}
            if node_samples:
                doc.update(
                    mean_wait_s=timer.total / timer.count,
                    p99_s=_pct(node_samples, 0.99),
                    samples_s=thin_samples(node_samples, PER_NODE_SAMPLE_CAP),
                )
            per_node[label] = doc
        granted_counts = [c for c in self.grant_counts if c > 0]
        mean_waits = [
            self.wait_sums[i] / self.grant_counts[i]
            for i in range(len(self.grant_counts))
            if self.grant_counts[i] > 0
        ]
        active_counts = [
            self.grant_counts[i]
            for i in range(len(self.grant_counts))
            if self.active[i]
        ]
        counters = mux.counters()
        return {
            "duration_s": duration_s,
            "grants": sum(self.grant_counts),
            "releases": self.releases,
            "throughput_hz": (
                sum(self.grant_counts) / duration_s if duration_s else 0.0
            ),
            "latency": latency,
            "latency_samples_s": thin_samples(samples, LATENCY_SAMPLE_CAP),
            "histogram_ms": {
                str(k): self.histogram.buckets[k]
                for k in sorted(self.histogram.buckets)
            },
            "per_node": per_node,
            "fairness": {
                "grant_count_cv": coefficient_of_variation(
                    [float(c) for c in active_counts]
                ),
                "mean_wait_cv": coefficient_of_variation(mean_waits),
                "clients_active": sum(1 for a in self.active if a),
                "clients_granted": len(granted_counts),
            },
            "sheds": dict(counters["shed"]),
            "shed_total": sum(counters["shed"].values()),
            "retries": sum(self.retries),
            "failures": sum(self.failures),
            "abandoned": self.abandoned,
            "admission": {
                k: v for k, v in counters.items() if k != "shed"
            },
            "batching": batching,
            "safety": safety,
        }


def _pct(sorted_samples: List[float], q: float) -> float:
    from ..obs.metrics import percentile_of_sorted

    return percentile_of_sorted(sorted_samples, q)


# ---------------------------------------------------------------- sim engine


def run_sim(config: LoadgenConfig) -> Dict[str, Any]:
    """The virtual-time engine: a byte-stable report, no sockets.

    Event-driven over a heap; the real mux/admission objects decide, a
    fixed-delay transport and FIFO-grant nodes model the rest.
    """
    config.validate()
    n_nodes = config.nodes
    node_labels = [f"n{i}" for i in range(n_nodes)]
    mux = GatewayMux(
        node_labels,
        upstreams_per_node=config.upstreams_per_node,
        admission=config.admission,
        gateway_id=config.gateway_id,
    )
    if mux.upstream_count > config.max_upstreams:
        raise ValueError(
            f"{mux.upstream_count} upstreams exceed budget "
            f"{config.max_upstreams}"
        )
    stats = FleetStats(config.clients, node_labels)
    pool = _rng_pool(config.seed, config.clients)
    client_rng = lambda i: pool[i % len(pool)]  # noqa: E731
    arrivals_rng = random.Random(config.seed)
    client_label = [f"c{i}" for i in range(config.clients)]
    client_node = [i % n_nodes for i in range(config.clients)]
    retry_left = [0] * config.clients
    #: req_id -> client index, for completion routing.
    owner: Dict[str, int] = {}

    # Node model: current holder + FIFO of granted order.
    holder: List[Optional[str]] = [None] * n_nodes
    queue: List[deque] = [deque() for _ in range(n_nodes)]

    heap: List[Tuple[float, int, str, Any]] = []
    seq = 0

    def push(t: float, kind: str, data: Any) -> None:
        nonlocal seq
        seq += 1
        heapq.heappush(heap, (t, seq, kind, data))

    def think_delay(i: int) -> float:
        if config.think_s == 0:
            return 0.0
        return client_rng(i).expovariate(1.0 / config.think_s)

    def hold_delay(i: int) -> float:
        if config.hold_s == 0:
            return 0.0
        return client_rng(i).expovariate(1.0 / config.hold_s)

    def submit_acquire(i: int, t: float) -> None:
        if t > config.duration_s:
            return
        stats.issued(i)
        decision = mux.submit(client_label[i], client_node[i], "acquire", t)
        if decision.admitted:
            retry_left[i] = config.max_retries
            owner[decision.req_id] = i
            push(t + SIM_NET_DELAY_S, "node-arrive", decision.req_id)
            return
        stats.shed(i)
        if retry_left[i] > 0:
            retry_left[i] -= 1
            stats.retries[i] += 1
            backoff = decision.retry_after_s + client_rng(i).expovariate(100.0)
            push(t + backoff, "acquire", i)
        else:
            stats.abandoned += 1
            if config.mode == "closed":
                retry_left[i] = config.max_retries
                push(t + think_delay(i), "acquire", i)

    def grant_next(node: int, t: float) -> None:
        if holder[node] is not None or not queue[node]:
            return
        req_id = queue[node].popleft()
        holder[node] = req_id
        push(t + SIM_GRANT_OVERHEAD_S + SIM_NET_DELAY_S, "grant-rsp", req_id)

    # Seed the first wave.
    if config.mode == "closed":
        for i in range(config.clients):
            retry_left[i] = config.max_retries
            start = client_rng(i).uniform(
                0.0, min(max(config.think_s, 0.001), config.duration_s)
            )
            push(start, "acquire", i)
    else:
        push(arrivals_rng.expovariate(config.arrival_rate_hz), "arrival", None)

    while heap:
        t, _, kind, data = heapq.heappop(heap)
        if kind == "arrival":
            if t <= config.duration_s:
                i = arrivals_rng.randrange(config.clients)
                retry_left[i] = config.max_retries
                submit_acquire(i, t)
                push(
                    t + arrivals_rng.expovariate(config.arrival_rate_hz),
                    "arrival",
                    None,
                )
        elif kind == "acquire":
            submit_acquire(data, t)
        elif kind == "node-arrive":
            req_id = data
            client = owner.get(req_id)
            if client is None:
                continue
            node = client_node[client]
            queue[node].append(req_id)
            grant_next(node, t)
        elif kind == "grant-rsp":
            req_id = data
            i = owner.pop(req_id, None)
            completion = mux.resolve(req_id, True, t)
            if completion is None or i is None:
                continue
            stats.grant(i, node_labels[completion.node], completion.wait_s)
            push(t + hold_delay(i), "release", (i, completion.node, req_id))
        elif kind == "release":
            i, node, held_req = data
            decision = mux.submit(client_label[i], node, "release", t)
            if decision.admitted:
                owner[decision.req_id] = i
                push(
                    t + SIM_NET_DELAY_S,
                    "node-release",
                    (decision.req_id, node, held_req),
                )
        elif kind == "node-release":
            rel_id, node, held_req = data
            if holder[node] == held_req:
                holder[node] = None
            push(t + SIM_NET_DELAY_S, "release-rsp", rel_id)
            grant_next(node, t)
        elif kind == "release-rsp":
            rel_id = data
            i = owner.pop(rel_id, None)
            completion = mux.resolve(rel_id, True, t)
            if completion is None or i is None:
                continue
            stats.releases += 1
            if config.mode == "closed" and t <= config.duration_s:
                retry_left[i] = config.max_retries
                push(t + think_delay(i), "acquire", i)

    results = stats.results_doc(
        config.duration_s,
        mux,
        batching={
            "upstream_frames": mux.admission.admitted,
            "upstream_flushes": 0,
            "mean_batch": 0.0,
            "dials": mux.upstream_count,
        },
        safety={
            "mode": "model",
            "violations": 0,
            "audited_events": 0,
        },
    )
    return build_report(config.spec_doc("sim"), results)


# --------------------------------------------------------------- live engine


class LiveFleet:
    """The timer-heap fleet driver over a running gateway."""

    def __init__(
        self,
        config: LoadgenConfig,
        gateway,
        stats: FleetStats,
        node_labels: List[str],
    ) -> None:
        self.config = config
        self.gateway = gateway
        self.stats = stats
        self.node_labels = node_labels
        self._rng_pool = _rng_pool(config.seed, config.clients)
        self.client_rng = lambda i: self._rng_pool[i % len(self._rng_pool)]
        self.arrivals_rng = random.Random(config.seed)
        self.client_label = [f"c{i}" for i in range(config.clients)]
        self.client_node = [i % config.nodes for i in range(config.clients)]
        self.retry_left = [0] * config.clients
        self.heap: List[Tuple[float, int, str, Any]] = []
        self.seq = 0
        self.completions: deque = deque()
        self.wake = asyncio.Event()
        self.draining = False
        self.holding: Dict[int, int] = {}  #: client -> node while held

    def push(self, t: float, kind: str, data: Any) -> None:
        self.seq += 1
        heapq.heappush(self.heap, (t, self.seq, kind, data))

    # ------------------------------------------------------------- actions

    def _submit_acquire(self, i: int, now: float) -> None:
        if self.draining:
            return
        self.stats.issued(i)
        decision = self.gateway.submit(
            self.client_label[i],
            self.client_node[i],
            "acquire",
            self._completed,
        )
        if decision is None:
            return
        self.stats.shed(i)
        if self.retry_left[i] > 0:
            self.retry_left[i] -= 1
            self.stats.retries[i] += 1
            backoff = (
                decision.retry_after_s
                + self.client_rng(i).expovariate(100.0)
            )
            self.push(now + backoff, "acquire", i)
        else:
            self.stats.abandoned += 1
            if self.config.mode == "closed":
                self.retry_left[i] = self.config.max_retries
                self.push(now + self._think(i), "acquire", i)

    def _think(self, i: int) -> float:
        if self.config.think_s == 0:
            return 0.0
        return self.client_rng(i).expovariate(1.0 / self.config.think_s)

    def _hold(self, i: int) -> float:
        if self.config.hold_s == 0:
            return 0.0
        return self.client_rng(i).expovariate(1.0 / self.config.hold_s)

    def _completed(self, completion: Completion) -> None:
        self.completions.append(completion)
        self.wake.set()

    def _client_of(self, completion: Completion) -> Optional[int]:
        label = completion.client
        if label.startswith("c"):
            try:
                return int(label[1:])
            except ValueError:
                return None
        return None

    def _process_completion(self, completion: Completion, now: float) -> None:
        i = self._client_of(completion)
        if i is None:
            return
        if completion.op == "acquire":
            if completion.ok:
                self.stats.grant(
                    i, self.node_labels[completion.node], completion.wait_s
                )
                self.holding[i] = completion.node
                delay = 0.0 if self.draining else self._hold(i)
                self.push(now + delay, "release", i)
            else:
                # Upstream failure (crashed node, lost pipe): back off and
                # retry like a shed — the node may be restarting.
                self.stats.failures[i] += 1
                if not self.draining:
                    if self.retry_left[i] > 0:
                        self.retry_left[i] -= 1
                        self.stats.retries[i] += 1
                        self.push(
                            now + 0.05 + self.client_rng(i).expovariate(50.0),
                            "acquire",
                            i,
                        )
                    elif self.config.mode == "closed":
                        self.stats.abandoned += 1
                        self.retry_left[i] = self.config.max_retries
                        self.push(now + self._think(i), "acquire", i)
        elif completion.op == "release":
            self.holding.pop(i, None)
            if completion.ok:
                self.stats.releases += 1
            else:
                self.stats.failures[i] += 1
            if (
                self.config.mode == "closed"
                and not self.draining
            ):
                self.retry_left[i] = self.config.max_retries
                self.push(now + self._think(i), "acquire", i)

    def _send_release(self, i: int, now: float) -> None:
        node = self.holding.get(i)
        if node is None:
            return
        decision = self.gateway.submit(
            self.client_label[i], node, "release", self._completed
        )
        if decision is not None:
            # Releases are never shed by policy; a refusal here means the
            # mux rejected the node index — count and drop.
            self.stats.failures[i] += 1
            self.holding.pop(i, None)

    # ---------------------------------------------------------------- run

    async def run(self, stop_at: float, drain_grace_s: float = 2.0) -> None:
        loop = asyncio.get_running_loop()
        cfg = self.config
        if cfg.mode == "closed":
            now = loop.time()
            for i in range(cfg.clients):
                self.retry_left[i] = cfg.max_retries
                start = self.client_rng(i).uniform(
                    0.0, min(max(cfg.think_s, 0.001), cfg.duration_s)
                )
                self.push(now + start, "acquire", i)
        else:
            self.push(
                loop.time()
                + self.arrivals_rng.expovariate(cfg.arrival_rate_hz),
                "arrival",
                None,
            )
        drain_deadline = stop_at + drain_grace_s
        while True:
            now = loop.time()
            if not self.draining and now >= stop_at:
                self.draining = True
            if self.draining:
                if now >= drain_deadline:
                    break
                if (
                    not self.holding
                    and self.gateway.mux.pending_count() == 0
                ):
                    break
            while self.completions:
                self._process_completion(self.completions.popleft(), now)
            ran_action = False
            while self.heap and self.heap[0][0] <= now:
                _, _, kind, data = heapq.heappop(self.heap)
                ran_action = True
                if kind == "acquire":
                    self._submit_acquire(data, now)
                elif kind == "release":
                    self._send_release(data, now)
                elif kind == "arrival":
                    if not self.draining:
                        i = self.arrivals_rng.randrange(cfg.clients)
                        self.retry_left[i] = cfg.max_retries
                        self._submit_acquire(i, now)
                        self.push(
                            now
                            + self.arrivals_rng.expovariate(
                                cfg.arrival_rate_hz
                            ),
                            "arrival",
                            None,
                        )
            if ran_action or self.completions:
                continue
            self.gateway.flush()
            next_due = self.heap[0][0] if self.heap else now + 0.05
            timeout = max(0.0, min(next_due - now, 0.05))
            try:
                await asyncio.wait_for(self.wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self.wake.clear()
        # Final sweep: release anything still held, then let it settle.
        for i in list(self.holding):
            self._send_release(i, loop.time())
        self.gateway.flush()
        settle_until = loop.time() + 0.5
        while loop.time() < settle_until and (
            self.holding or self.completions
        ):
            while self.completions:
                self._process_completion(self.completions.popleft(), loop.time())
            try:
                await asyncio.wait_for(self.wake.wait(), 0.05)
            except asyncio.TimeoutError:
                pass
            self.wake.clear()


async def run_live(
    config: LoadgenConfig,
    cluster_config,
) -> Tuple[Dict[str, Any], Any, List[Any]]:
    """The live engine: cluster + gateway + fleet, then the audit.

    Returns ``(report, cluster_result, violations)`` — the CLI writes the
    artefacts and decides the exit code.
    """
    from ..net.cluster import ClusterSupervisor
    from ..net.lock import hold_intervals, neighbour_violations
    from .server import GatewayConfig, GatewayServer

    config.validate()
    if not cluster_config.lock_service:
        raise ValueError("loadgen requires a lock_service cluster config")
    topology_nodes = list(cluster_config.topology.nodes)
    if len(topology_nodes) != config.nodes:
        raise ValueError(
            f"cluster topology has {len(topology_nodes)} nodes, "
            f"loadgen config says {config.nodes}"
        )
    supervisor = ClusterSupervisor(cluster_config)
    gateway: Optional[GatewayServer] = None
    node_labels = [repr(pid) for pid in topology_nodes]
    stats = FleetStats(config.clients, node_labels)
    fleet_task: Optional[asyncio.Task] = None
    interrupted = False
    try:
        await supervisor.start(config.duration_s)
        gateway_config = GatewayConfig(
            upstream_addrs=[
                (cluster_config.host, supervisor.nodes[pid].port)
                for pid in topology_nodes
            ],
            node_labels=node_labels,
            upstreams_per_node=config.upstreams_per_node,
            max_upstreams=config.max_upstreams,
            admission=config.admission,
            upstream_flush=config.flush,
            gateway_id=config.gateway_id,
            host=cluster_config.host,
        )
        gateway = GatewayServer(gateway_config)
        await gateway.start()
        loop = asyncio.get_running_loop()
        fleet = LiveFleet(config, gateway, stats, node_labels)
        stop_at = supervisor._t0 + config.duration_s
        fleet_task = asyncio.create_task(fleet.run(stop_at))
        await supervisor.run(config.duration_s)
        await fleet_task
        fleet_task = None
    except asyncio.CancelledError:
        supervisor.interrupted = True
        interrupted = True
    finally:
        if fleet_task is not None:
            fleet_task.cancel()
            try:
                await fleet_task
            except (asyncio.CancelledError, Exception):
                pass
        batching = (
            gateway.batch_counters() if gateway is not None else {}
        )
        if gateway is not None:
            await gateway.stop()
        await supervisor.stop()
    result = supervisor.result(config.duration_s)
    intervals = hold_intervals(result.events, end_t=config.duration_s)
    violations = neighbour_violations(
        cluster_config.topology, intervals, exclude=result.killed
    )
    mux = gateway.mux if gateway is not None else GatewayMux(node_labels)
    results = stats.results_doc(
        config.duration_s,
        mux,
        batching=batching,
        safety={
            "mode": "live",
            "violations": len(violations),
            "audited_events": len(result.events),
            "killed": sorted(result.killed),
            "interrupted": interrupted,
        },
    )
    return (
        build_report(config.spec_doc("live"), results),
        result,
        violations,
    )
