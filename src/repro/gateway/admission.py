"""Admission control for the gateway: bounded windows, typed sheds.

A front-end tier that accepts every request under overload just moves the
collapse one hop downstream: the nodes' waiter queues grow without bound,
every grant latency explodes together, and the SLO burns down for all
clients at once.  The controller enforces three independent bounds and
*refuses early* with a typed RETRY instead — the client that is told
"come back in 50 ms" costs the cluster nothing while it waits:

* **per-client window** — one logical client may have at most
  ``max_per_client`` operations in flight.  Lock semantics make more than
  one acquire per client nonsensical anyway; the bound turns a buggy or
  greedy client into its own problem instead of everyone's (the fairness
  lever of Ben-David & Blelloch's wait-free locks, applied at admission).
* **per-node queue depth** — at most ``max_queue_depth`` un-granted
  acquires may be parked at one node.  This is the overload shed: past
  this depth the expected wait already exceeds any useful deadline.
* **per-upstream in-flight window** — at most ``max_in_flight``
  operations outstanding on one upstream connection, the classic bounded
  pipelining window.

Releases are *never* shed: refusing one would leak a held lock, which is
a safety problem, not a load problem.

The controller is synchronous and deterministic — the live gateway and
the virtual-time load-generator drive the very same object, so admission
behaviour in a byte-stable simulation is the behaviour on real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Typed shed reasons, carried verbatim in the RETRY response's ``error``.
SHED_CLIENT_WINDOW = "client-window"
SHED_QUEUE_FULL = "queue-full"
SHED_IN_FLIGHT = "in-flight-window"

SHED_REASONS = (SHED_CLIENT_WINDOW, SHED_QUEUE_FULL, SHED_IN_FLIGHT)

#: The typed refusal every shed response carries (``ok=False``).
RETRY_ERROR = "retry"


@dataclass(frozen=True)
class AdmissionConfig:
    """The three bounds plus the back-off hint for refused clients."""

    max_per_client: int = 1
    max_queue_depth: int = 256
    max_in_flight: int = 1024
    retry_after_s: float = 0.05

    def validate(self) -> None:
        if self.max_per_client < 1:
            raise ValueError("max_per_client must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")


class AdmissionController:
    """Windowed admission with per-client fairness accounting.

    ``try_admit`` either admits (returns ``None``) and takes the slots, or
    returns the shed reason; ``settle`` gives the slots back on
    completion.  Per-client admitted/shed counts accumulate for the
    fairness CV the load generator reports.
    """

    def __init__(self, config: AdmissionConfig = AdmissionConfig()) -> None:
        config.validate()
        self.config = config
        self._client_in_flight: Dict[str, int] = {}
        self._node_queue: Dict[Any, int] = {}
        self._upstream_in_flight: Dict[int, int] = {}
        self.admitted = 0
        self.completed = 0
        self.shed: Dict[str, int] = {r: 0 for r in SHED_REASONS}
        self.client_admitted: Dict[str, int] = {}
        self.client_shed: Dict[str, int] = {}

    # ------------------------------------------------------------- windows

    def try_admit(
        self, client: str, node: Any, upstream: int, op: str
    ) -> Optional[str]:
        """Admit (``None``) or the typed shed reason.

        Releases bypass the queue-depth and client windows — refusing one
        would leak a lock — but still count toward the upstream window so
        the pipe stays bounded.
        """
        cfg = self.config
        if op != "release":
            if self._client_in_flight.get(client, 0) >= cfg.max_per_client:
                return self._refuse(client, SHED_CLIENT_WINDOW)
            if self._node_queue.get(node, 0) >= cfg.max_queue_depth:
                return self._refuse(client, SHED_QUEUE_FULL)
            if self._upstream_in_flight.get(upstream, 0) >= cfg.max_in_flight:
                return self._refuse(client, SHED_IN_FLIGHT)
        self._client_in_flight[client] = (
            self._client_in_flight.get(client, 0) + 1
        )
        self._upstream_in_flight[upstream] = (
            self._upstream_in_flight.get(upstream, 0) + 1
        )
        if op == "acquire":
            self._node_queue[node] = self._node_queue.get(node, 0) + 1
        self.admitted += 1
        self.client_admitted[client] = self.client_admitted.get(client, 0) + 1
        return None

    def _refuse(self, client: str, reason: str) -> str:
        self.shed[reason] += 1
        self.client_shed[client] = self.client_shed.get(client, 0) + 1
        return reason

    def settle(self, client: str, node: Any, upstream: int, op: str) -> None:
        """Give back the slots an admitted operation held."""
        self.completed += 1
        self._dec(self._client_in_flight, client)
        self._dec(self._upstream_in_flight, upstream)
        if op == "acquire":
            self._dec(self._node_queue, node)

    @staticmethod
    def _dec(counts: Dict, key: Any) -> None:
        left = counts.get(key, 0) - 1
        if left > 0:
            counts[key] = left
        else:
            counts.pop(key, None)

    # ------------------------------------------------------------- gauges

    def in_flight(self, upstream: int) -> int:
        return self._upstream_in_flight.get(upstream, 0)

    def queue_depth(self, node: Any) -> int:
        return self._node_queue.get(node, 0)

    def queue_depths(self) -> Dict[Any, int]:
        return dict(self._node_queue)

    def shed_total(self) -> int:
        return sum(self.shed.values())

    def fairness_counts(self) -> List[Tuple[str, int]]:
        """``(client, admitted)`` pairs, sorted — the fairness ledger."""
        return sorted(self.client_admitted.items())
