"""Shared vocabulary of the dining-philosophers programs.

All diners algorithms in this repository (the paper's program, its ablation
variants, and the baselines) use the same three-valued ``state`` variable and
the same edge-variable convention, so the predicates, analysis and metrics
modules can treat them uniformly.

Edge-variable convention (from Figure 1 of the paper): the shared variable
``priority:p:q`` on edge ``{p, q}`` holds the identifier of the
**higher-priority endpoint** — the *ancestor*.  If ``priority:p:q == q`` the
edge is directed from ``q`` towards ``p`` in the priority graph, ``q`` is a
direct ancestor of ``p``, and ``p`` is a direct descendant of ``q``.
A process's *descendants* are the processes reachable from it along priority
edges; after ``exit`` a process points every incident edge at its neighbour,
making itself a sink (lowest priority).
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..sim.configuration import Configuration
from ..sim.topology import Pid


class DinerState(str, enum.Enum):
    """The paper's ``state:p ∈ {T, H, E}``."""

    THINKING = "T"
    HUNGRY = "H"
    EATING = "E"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Local-variable names shared by all diners algorithms.
VAR_STATE = "state"
VAR_NEEDS = "needs"
VAR_DEPTH = "depth"

#: Action names of the paper's program (Figure 1), reused by variants.
ACTION_JOIN = "join"
ACTION_LEAVE = "leave"
ACTION_ENTER = "enter"
ACTION_EXIT = "exit"
ACTION_FIXDEPTH = "fixdepth"


def diner_state(config: Configuration, pid: Pid) -> DinerState:
    """The T/H/E state of ``pid`` in ``config``."""
    return DinerState(config.local(pid, VAR_STATE))


def direct_ancestors(config: Configuration, pid: Pid) -> Tuple[Pid, ...]:
    """Neighbours with priority over ``pid`` (edge variable names them)."""
    return tuple(
        q
        for q in config.topology.neighbors(pid)
        if config.edge_value(pid, q) == q
    )


def direct_descendants(config: Configuration, pid: Pid) -> Tuple[Pid, ...]:
    """Neighbours ``pid`` has priority over (edge variable names ``pid``)."""
    return tuple(
        q
        for q in config.topology.neighbors(pid)
        if config.edge_value(pid, q) == pid
    )
