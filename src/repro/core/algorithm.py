"""The paper's program (Figure 1): stabilizing diners with failure locality 2.

Five actions per process ``p``:

``join``
    ``needs ∧ state = T ∧ (∀ ancestor q: state.q = T)  →  state := H``
``leave``
    ``state = H ∧ (∃ ancestor q: state.q ≠ T)  →  state := T``
    — the *dynamic threshold*: a hungry process yields to its descendants
    while an ancestor is hungry or eating, which is what bounds the failure
    locality at 2.
``enter``
    ``state = H ∧ (∀ ancestor q: state.q = T) ∧ (∀ descendant q: state.q ≠ E)
    →  state := E``
``exit``
    ``state = E ∨ depth > D  →  state := T; depth := 0;
    (∀ neighbour q: priority := q)``
    — finishing a meal *or* detecting a priority cycle (depth beyond the
    diameter) demotes ``p`` below all its neighbours, which keeps the
    priority graph acyclic and, in the cycle case, breaks the cycle.
``fixdepth``
    ``∃ descendant q: depth < depth.q + 1  →  depth := depth.q + 1``
    — propagates the distance-to-farthest-descendant estimate upwards; in a
    priority cycle the estimates grow without bound until some process
    exceeds ``D`` and ``exit`` fires.

The translation is literal except for two deliberate, documented choices:

* ``fixdepth`` takes the **maximum** violating descendant value rather than
  an arbitrary one.  This equals executing the paper's action once per
  violating descendant back-to-back, so every computation produced is still
  a computation of the paper's program (with stuttering removed).
* an optional ``depth_cap`` clamps ``depth`` for the model checker.  With
  ``depth_cap = D + 1`` the clamp is a sound abstraction: every guard only
  tests ``depth > D``, and the clamped guard ``depth < min(depth.q + 1, cap)``
  prevents the degenerate self-loop at the cap.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from ..sim.domains import BoolDomain, Domain, FiniteDomain, IntRange, SaturatingInt
from ..sim.process import ActionDef, Algorithm, ProcessView
from ..sim.topology import Edge, Pid, Topology
from .state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_FIXDEPTH,
    ACTION_JOIN,
    ACTION_LEAVE,
    VAR_DEPTH,
    VAR_NEEDS,
    VAR_STATE,
    DinerState,
)

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value


def view_ancestors(view: ProcessView) -> Tuple[Pid, ...]:
    """Direct ancestors of the view's process (edge variable names them)."""
    return tuple(q for q in view.neighbors if view.edge_value(q) == q)


def view_descendants(view: ProcessView) -> Tuple[Pid, ...]:
    """Direct descendants of the view's process."""
    return tuple(q for q in view.neighbors if view.edge_value(q) == view.pid)


class NADiners(Algorithm):
    """Nesterenko–Arora malicious-crash-tolerant dining philosophers.

    Parameters
    ----------
    depth_cap:
        ``None`` (default) keeps ``depth`` unbounded as in the paper.  An
        integer cap (use ``topology.diameter + 1``) makes the state space
        finite for model checking; see the module docstring for why the
        clamp is sound.
    diameter_override:
        The value each process uses as the constant ``D``.  ``None``
        (default, and what the paper assumes) uses the true diameter; the
        wrong-D ablation (:mod:`repro.core.variants`) sets this to study what
        a mis-configured diameter costs.
    """

    name = "na-diners"
    hunger_variable = VAR_NEEDS

    def __init__(
        self,
        depth_cap: int | None = None,
        *,
        diameter_override: int | None = None,
    ) -> None:
        if depth_cap is not None and depth_cap < 1:
            raise ValueError("depth_cap must be at least 1")
        if diameter_override is not None and diameter_override < 0:
            raise ValueError("diameter_override must be non-negative")
        self.depth_cap = depth_cap
        self.diameter_override = diameter_override
        self._initial_depth_cache: dict[int, dict[Pid, int]] = {}
        self._actions = (
            ActionDef(ACTION_JOIN, self._join_guard, self._join),
            ActionDef(ACTION_LEAVE, self._leave_guard, self._leave),
            ActionDef(ACTION_ENTER, self._enter_guard, self._enter),
            ActionDef(ACTION_EXIT, self._exit_guard, self._exit),
            ActionDef(ACTION_FIXDEPTH, self._fixdepth_guard, self._fixdepth),
        )

    # ------------------------------------------------------- declarations

    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        if self.depth_cap is not None:
            depth_domain: Domain = IntRange(0, self.depth_cap)
        else:
            # Unbounded for writes; fault injection samples up to 2D + 2 so a
            # transient fault can push depth both below and beyond the
            # cycle-detection threshold.
            depth_domain = SaturatingInt(2 * topology.diameter + 2)
        return {
            VAR_STATE: FiniteDomain((T, H, E)),
            VAR_NEEDS: BoolDomain(),
            VAR_DEPTH: depth_domain,
        }

    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        order = {p: i for i, p in enumerate(topology.nodes)}
        endpoints = sorted(e, key=lambda p: order[p])
        return FiniteDomain(tuple(endpoints))

    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        return {
            VAR_STATE: T,
            VAR_NEEDS: False,
            VAR_DEPTH: self._initial_depth(pid, topology),
        }

    def _initial_depth(self, pid: Pid, topology: Topology) -> int:
        """The exact distance to ``pid``'s farthest descendant in the initial
        (node-order) priority DAG, so the initial state is quiescent: with
        all-zero depths ``fixdepth`` would be legitimately enabled."""
        key = id(topology)
        if key not in self._initial_depth_cache:
            order = {p: i for i, p in enumerate(topology.nodes)}
            depths: dict[Pid, int] = {}
            for p in reversed(topology.nodes):  # descendants come later
                below = [
                    depths[q] + 1 for q in topology.neighbors(p) if order[q] > order[p]
                ]
                depths[p] = max(below, default=0)
            self._initial_depth_cache[key] = depths
        value = self._initial_depth_cache[key][pid]
        if self.depth_cap is not None:
            value = min(value, self.depth_cap)
        return value

    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        # Priority by node order: the earlier endpoint is the ancestor.
        # Consistent with a global topological order, hence acyclic.
        order = {p: i for i, p in enumerate(topology.nodes)}
        return min(e, key=lambda p: order[p])

    def actions(self) -> Tuple[ActionDef, ...]:
        return self._actions

    # ------------------------------------------------------------ actions

    @staticmethod
    def _join_guard(view: ProcessView) -> bool:
        return (
            bool(view.get(VAR_NEEDS))
            and view.get(VAR_STATE) == T
            and all(view.peek(q, VAR_STATE) == T for q in view_ancestors(view))
        )

    @staticmethod
    def _join(view: ProcessView) -> None:
        view.set(VAR_STATE, H)

    @staticmethod
    def _leave_guard(view: ProcessView) -> bool:
        return view.get(VAR_STATE) == H and any(
            view.peek(q, VAR_STATE) != T for q in view_ancestors(view)
        )

    @staticmethod
    def _leave(view: ProcessView) -> None:
        view.set(VAR_STATE, T)

    @staticmethod
    def _enter_guard(view: ProcessView) -> bool:
        return (
            view.get(VAR_STATE) == H
            and all(view.peek(q, VAR_STATE) == T for q in view_ancestors(view))
            and all(view.peek(q, VAR_STATE) != E for q in view_descendants(view))
        )

    @staticmethod
    def _enter(view: ProcessView) -> None:
        view.set(VAR_STATE, E)

    def _d(self, view: ProcessView) -> int:
        """The constant ``D`` as this algorithm instance believes it."""
        if self.diameter_override is not None:
            return self.diameter_override
        return view.diameter

    def _exit_guard(self, view: ProcessView) -> bool:
        return view.get(VAR_STATE) == E or view.get(VAR_DEPTH) > self._d(view)

    @staticmethod
    def _exit(view: ProcessView) -> None:
        view.set(VAR_STATE, T)
        view.set(VAR_DEPTH, 0)
        for q in view.neighbors:
            view.set_edge(q, q)

    def _fixdepth_guard(self, view: ProcessView) -> bool:
        depth = view.get(VAR_DEPTH)
        return any(
            depth < self._propagated(view, q) for q in view_descendants(view)
        )

    def _fixdepth(self, view: ProcessView) -> None:
        depth = view.get(VAR_DEPTH)
        candidates = [
            value
            for q in view_descendants(view)
            if (value := self._propagated(view, q)) > depth
        ]
        view.set(VAR_DEPTH, max(candidates))

    def _propagated(self, view: ProcessView, q: Pid) -> int:
        """``depth.q + 1``, clamped when a depth cap is in force."""
        value = view.peek(q, VAR_DEPTH) + 1
        if self.depth_cap is not None:
            value = min(value, self.depth_cap)
        return value
