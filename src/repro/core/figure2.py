"""The paper's Figure 2, reconstructed exactly.

Figure 2 shows a fragment of a computation on a seven-process system with
diameter 3 in which, simultaneously:

* process ``a`` has crashed **while eating**.  Its neighbours ``b`` (hungry,
  with dead eater ``a`` as its only descendant blocking ``enter`` and no
  ancestor to trigger ``leave``) and ``c`` (thinking, with ``a`` as a
  non-thinking ancestor blocking ``join``) are blocked forever;
* process ``d`` (distance 2 from the crash) is hungry behind blocked ``b``;
  the **dynamic threshold** fires: ``d`` executes ``leave`` and yields to its
  descendant ``e``, containing the crash's effect within distance 2;
* processes ``e``, ``f``, ``g`` carry a **priority cycle**
  (``e → f → g → e``) left over from a transient fault; their depth values
  (2, 3, 4) grew via ``fixdepth`` until ``depth.g = 4`` exceeded the
  diameter 3, so ``g`` executes ``exit``, breaking the cycle and letting
  ``e`` eat.

The three panel transitions of the figure are therefore::

    state 1 --(d: leave)--> state 2 --(g: exit)--> state 3 --(e: enter)--> ...

:func:`figure2_configuration` builds state 1; :func:`run_figure2` replays the
three transitions, checking each action is enabled exactly as the paper
narrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.configuration import Configuration
from ..sim.network import System
from ..sim.topology import edge, figure2 as figure2_topology
from .algorithm import NADiners
from .state import VAR_DEPTH, VAR_NEEDS, VAR_STATE, DinerState

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value

#: The action sequence the figure narrates: (process, action-name).
FIGURE2_SEQUENCE: Tuple[Tuple[str, str], ...] = (
    ("d", "leave"),
    ("g", "exit"),
    ("e", "enter"),
)

#: T/H/E of each process in the figure's first panel.
FIGURE2_STATES = {"a": E, "b": H, "c": T, "d": H, "e": H, "f": T, "g": H}

#: depth of each process in the figure's first panel ("e H 2", "f 3", "g H 4").
FIGURE2_DEPTHS = {"a": 0, "b": 0, "c": 0, "d": 0, "e": 2, "f": 3, "g": 4}

#: Priority edges as (ancestor, descendant) pairs in the first panel.
FIGURE2_PRIORITIES: Tuple[Tuple[str, str], ...] = (
    ("b", "a"),  # a is b's descendant: b cannot enter past the dead eater
    ("a", "c"),  # a is c's ancestor: c cannot join past the dead eater
    ("b", "d"),  # d waits behind blocked b -> dynamic threshold fires
    ("c", "d"),
    ("d", "e"),  # d yields to e
    ("d", "f"),
    ("d", "g"),
    ("e", "f"),  # the cycle e -> f -> g -> e
    ("f", "g"),
    ("g", "e"),
)


def figure2_configuration() -> Configuration:
    """State 1 of Figure 2 as an immutable configuration (``a`` dead)."""
    topology = figure2_topology()
    local_values = {
        pid: {
            VAR_STATE: FIGURE2_STATES[pid],
            VAR_NEEDS: True,
            VAR_DEPTH: FIGURE2_DEPTHS[pid],
        }
        for pid in topology.nodes
    }
    edge_values = {
        edge(ancestor, descendant): ancestor
        for ancestor, descendant in FIGURE2_PRIORITIES
    }
    return Configuration(topology, local_values, edge_values, dead=("a",))


def figure2_system(algorithm: NADiners | None = None) -> System:
    """A mutable system initialised to state 1 of Figure 2."""
    return System.from_configuration(algorithm or NADiners(), figure2_configuration())


@dataclass(frozen=True)
class Figure2Replay:
    """Outcome of :func:`run_figure2`: the four panel configurations."""

    configurations: Tuple[Configuration, ...]
    executed: Tuple[Tuple[str, str], ...]

    @property
    def initial(self) -> Configuration:
        return self.configurations[0]

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]


def run_figure2(algorithm: NADiners | None = None) -> Figure2Replay:
    """Replay the figure's three transitions, verifying enabledness.

    Raises ``AssertionError`` if any narrated action is not enabled at its
    panel — i.e. if the reconstruction stopped matching the algorithm.
    """
    system = figure2_system(algorithm)
    algo = system.algorithm
    configurations: List[Configuration] = [system.snapshot()]
    for pid, action_name in FIGURE2_SEQUENCE:
        action = algo.action_named(action_name)
        enabled = [a.name for a in system.enabled_actions(pid)]
        if action_name not in enabled:
            raise AssertionError(
                f"Figure 2 replay diverged: {action_name!r} not enabled at "
                f"{pid!r} (enabled there: {enabled})"
            )
        system.execute(pid, action)
        configurations.append(system.snapshot())
    return Figure2Replay(tuple(configurations), FIGURE2_SEQUENCE)
