"""Ablation variants of the paper's program.

Each variant removes (or misconfigures) exactly one of the mechanisms the
paper's "Solution ideas" section credits with one tolerance property, so the
ablation benchmarks (experiment E8) can show that the mechanism is what buys
the property:

* :class:`NoFixdepthDiners` — drops cycle breaking (``fixdepth`` and the
  ``depth > D`` disjunct of ``exit``).  Crash-tolerant but **not
  stabilizing**: a transient fault that creates a priority cycle livelocks
  the cycle's processes forever.
* :class:`NoDynamicThresholdDiners` — drops ``leave``.  Stabilizing but with
  **unbounded failure locality**: a crashed eater can starve a whole chain
  of waiting processes, at any distance.
* :class:`WrongDiameterDiners` — runs the full program with a wrong constant
  ``D``.  Underestimating keeps liveness and stabilization (more spurious
  ``exit`` s, so more scheduling churn); overestimating keeps correctness but
  slows cycle detection proportionally.
"""

from __future__ import annotations

from ..sim.process import ActionDef, ProcessView
from ..sim.topology import Topology
from .algorithm import NADiners
from .state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_JOIN,
    ACTION_LEAVE,
    VAR_STATE,
)
from .state import DinerState

E = DinerState.EATING.value


class NoFixdepthDiners(NADiners):
    """The program without its cycle-breaking machinery.

    ``fixdepth`` is removed and ``exit`` fires only after eating, never on
    ``depth > D``.  From a legitimate initial state this behaves exactly like
    the full program; from an arbitrary state a priority cycle is permanent.
    """

    name = "na-diners/no-fixdepth"

    def __init__(self, depth_cap: int | None = None) -> None:
        super().__init__(depth_cap)
        base = {a.name: a for a in super().actions()}
        self._actions = (
            base[ACTION_JOIN],
            base[ACTION_LEAVE],
            base[ACTION_ENTER],
            ActionDef(ACTION_EXIT, self._exit_meal_only_guard, self._exit),
        )

    @staticmethod
    def _exit_meal_only_guard(view: ProcessView) -> bool:
        return view.get(VAR_STATE) == E


class NoDynamicThresholdDiners(NADiners):
    """The program without ``leave`` (no dynamic threshold).

    Hungry processes never yield to their descendants, so waiting chains
    behind a crashed process extend arbitrarily far: failure locality grows
    with the topology instead of staying at 2.
    """

    name = "na-diners/no-threshold"

    def __init__(self, depth_cap: int | None = None) -> None:
        super().__init__(depth_cap)
        self._actions = tuple(
            a for a in super().actions() if a.name != ACTION_LEAVE
        )


class WrongDiameterDiners(NADiners):
    """The full program run with a wrong value of the constant ``D``."""

    def __init__(self, assumed_diameter: int, depth_cap: int | None = None) -> None:
        super().__init__(depth_cap, diameter_override=assumed_diameter)
        self.name = f"na-diners/D={assumed_diameter}"


def underestimated_diameter(topology: Topology) -> WrongDiameterDiners:
    """The wrong-D variant with the smallest non-trivial underestimate."""
    return WrongDiameterDiners(max(0, topology.diameter - 1))


def overestimated_diameter(topology: Topology, factor: int = 2) -> WrongDiameterDiners:
    """The wrong-D variant with an overestimate of ``factor * D``."""
    if factor < 1:
        raise ValueError("factor must be at least 1")
    return WrongDiameterDiners(topology.diameter * factor)
