"""The paper's contribution: the malicious-crash-tolerant diners program.

Public surface:

* :class:`NADiners` — the algorithm of Figure 1;
* the predicates of §3 (``invariant_holds``, ``nc_holds``, ``st_holds``,
  ``e_holds``, ``red_set``, ``green_set``, ...);
* the ablation variants used by experiment E8;
* the Figure 2 reconstruction.
"""

from ..sim.hunger import (  # re-exported: hunger is the diners' input signal
    AlwaysHungry,
    HungerPolicy,
    NeverHungry,
    ProbabilisticHunger,
    ScriptedHunger,
    SelectiveHunger,
)
from .algorithm import NADiners, view_ancestors, view_descendants
from .figure2 import (
    FIGURE2_DEPTHS,
    FIGURE2_PRIORITIES,
    FIGURE2_SEQUENCE,
    FIGURE2_STATES,
    Figure2Replay,
    figure2_configuration,
    figure2_system,
    run_figure2,
)
from .predicates import (
    e_holds,
    eating_pairs,
    green_set,
    invariant_holds,
    invariant_report,
    invariant_with_threshold,
    is_green,
    is_shallow,
    longest_live_ancestor_chain,
    nc_holds,
    priority_edges,
    red_set,
    shallow_set,
    st_holds,
    stably_shallow_set,
)
from .state import (
    ACTION_ENTER,
    ACTION_EXIT,
    ACTION_FIXDEPTH,
    ACTION_JOIN,
    ACTION_LEAVE,
    VAR_DEPTH,
    VAR_NEEDS,
    VAR_STATE,
    DinerState,
    diner_state,
    direct_ancestors,
    direct_descendants,
)
from .variants import (
    NoDynamicThresholdDiners,
    NoFixdepthDiners,
    WrongDiameterDiners,
    overestimated_diameter,
    underestimated_diameter,
)

__all__ = [
    "AlwaysHungry",
    "HungerPolicy",
    "NeverHungry",
    "ProbabilisticHunger",
    "ScriptedHunger",
    "SelectiveHunger",
    "NADiners",
    "view_ancestors",
    "view_descendants",
    "FIGURE2_DEPTHS",
    "FIGURE2_PRIORITIES",
    "FIGURE2_SEQUENCE",
    "FIGURE2_STATES",
    "Figure2Replay",
    "figure2_configuration",
    "figure2_system",
    "run_figure2",
    "e_holds",
    "eating_pairs",
    "green_set",
    "invariant_holds",
    "invariant_report",
    "invariant_with_threshold",
    "is_green",
    "is_shallow",
    "longest_live_ancestor_chain",
    "nc_holds",
    "priority_edges",
    "red_set",
    "shallow_set",
    "st_holds",
    "stably_shallow_set",
    "ACTION_ENTER",
    "ACTION_EXIT",
    "ACTION_FIXDEPTH",
    "ACTION_JOIN",
    "ACTION_LEAVE",
    "VAR_DEPTH",
    "VAR_NEEDS",
    "VAR_STATE",
    "DinerState",
    "diner_state",
    "direct_ancestors",
    "direct_descendants",
    "NoDynamicThresholdDiners",
    "NoFixdepthDiners",
    "WrongDiameterDiners",
    "overestimated_diameter",
    "underestimated_diameter",
]
