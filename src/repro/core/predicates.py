"""The paper's predicates: NC, SH/ST, E, the invariant I, and RD colouring.

Every function here is a pure function of a
:class:`~repro.sim.configuration.Configuration`, evaluated exactly as §3 of
the paper defines it:

* **NC** (Lemma 1) — every cycle of the priority graph contains a dead
  process; equivalently, the subgraph induced by live processes is acyclic.
* **SH:p** (shallow, §3.1) — ``p`` is dead, or ``depth.p ≤ D`` and for every
  direct descendant ``q`` either ``depth.q + l.p ≤ D`` (a large depth can no
  longer be propagated past ``D``) or ``depth.q + 1 ≤ depth.p`` (``p``'s
  fixdepth is disabled with respect to ``q``); ``l.p`` is the length of the
  longest chain of live ancestors of ``p``, including ``p`` itself.
* **stably shallow** — shallow, and dead or with all live (transitive)
  descendants shallow.  **ST** (Lemma 3): every process is stably shallow.
* **E** (Lemma 4) — two neighbours eat simultaneously only if both are dead.
* **I = NC ∧ ST ∧ E** (Theorem 1) — the legitimate-state predicate the
  program stabilizes to.
* **RD / red–green** (§3.2) — the least fixpoint classifying processes into
  *red* (transitively blocked by dead processes; their color never changes
  once I holds) and *green* (guaranteed to make progress — Theorem 2).

Reproduction finding — the ``threshold`` parameter
--------------------------------------------------

The paper compares ``depth`` against the graph diameter ``D``, but ``depth``
propagates along *priority edges*, so in a legitimate acyclic priority graph
it can reach the longest simple **directed path**, which may exceed the
diameter (e.g. 2 vs 1 on the triangle K3, where the only acyclic orientation
is a transitive tournament).  On such graphs the literal predicate ``ST`` is
unsatisfiable — the invariant ``I`` is empty — and the program exhibits
harmless *spurious exits* (safety is untouched; exits only demote).  On
trees and lines the longest simple path equals the diameter and the paper's
claims hold literally.

Every depth-sensitive predicate therefore takes ``threshold`` (default: the
diameter, the paper's literal choice).  Passing
``Topology.longest_simple_path()`` — and running
``NADiners(diameter_override=...)`` with the same value — restores a
non-empty invariant on any graph.  Experiment E9 demonstrates both regimes.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, List, Set, Tuple

from ..sim.configuration import Configuration
from ..sim.topology import Pid
from .state import (
    VAR_DEPTH,
    DinerState,
    diner_state,
    direct_ancestors,
    direct_descendants,
)

T = DinerState.THINKING
H = DinerState.HUNGRY
E = DinerState.EATING


# --------------------------------------------------------- priority graph


def priority_edges(config: Configuration) -> Tuple[Tuple[Pid, Pid], ...]:
    """All priority-graph edges as ``(ancestor, descendant)`` pairs."""
    topology = config.topology
    order = {p: i for i, p in enumerate(topology.nodes)}
    result: List[Tuple[Pid, Pid]] = []
    for e in sorted(topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))):
        p, q = sorted(e, key=lambda x: order[x])
        ancestor = config.edge_value(p, q)
        descendant = q if ancestor == p else p
        result.append((ancestor, descendant))
    return tuple(result)


def _descendant_adjacency(
    config: Configuration, *, live_only: bool
) -> Dict[Pid, Tuple[Pid, ...]]:
    """Adjacency ``p -> direct descendants of p`` (optionally live-induced)."""
    faulty = config.faulty
    adjacency: Dict[Pid, Tuple[Pid, ...]] = {}
    for p in config.topology.nodes:
        if live_only and p in faulty:
            adjacency[p] = ()
            continue
        descendants = direct_descendants(config, p)
        if live_only:
            descendants = tuple(q for q in descendants if q not in faulty)
        adjacency[p] = descendants
    return adjacency


def _has_cycle(adjacency: Dict[Pid, Tuple[Pid, ...]], nodes: Iterable[Pid]) -> bool:
    """Iterative three-colour DFS cycle detection."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {p: WHITE for p in nodes}
    for start in colour:
        if colour[start] is not WHITE:
            continue
        stack: List[Tuple[Pid, int]] = [(start, 0)]
        colour[start] = GREY
        while stack:
            node, index = stack[-1]
            children = adjacency.get(node, ())
            if index < len(children):
                stack[-1] = (node, index + 1)
                child = children[index]
                if child not in colour:
                    continue
                if colour[child] == GREY:
                    return True
                if colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def nc_holds(config: Configuration) -> bool:
    """Predicate NC: every priority cycle contains a dead process."""
    live = [p for p in config.topology.nodes if p not in config.faulty]
    adjacency = _descendant_adjacency(config, live_only=True)
    return not _has_cycle(adjacency, live)


# ----------------------------------------------------------- shallowness


def longest_live_ancestor_chain(config: Configuration, pid: Pid) -> float:
    """The paper's ``l:p``: longest chain of live ancestors including ``p``.

    Returns ``math.inf`` when ``p`` sits on (or below) a live priority
    cycle, in which case chains are unbounded.  Dead processes contribute
    0 and block chain growth through them.
    """
    faulty = config.faulty
    if pid in faulty:
        return 0.0
    # Ancestor adjacency restricted to live processes.
    live_ancestors: Dict[Pid, Tuple[Pid, ...]] = {}
    memo: Dict[Pid, float] = {}
    ON_STACK = object()
    state: Dict[Pid, object] = {}

    def ancestors(p: Pid) -> Tuple[Pid, ...]:
        if p not in live_ancestors:
            live_ancestors[p] = tuple(
                q for q in direct_ancestors(config, p) if q not in faulty
            )
        return live_ancestors[p]

    def chain(p: Pid) -> float:
        if p in memo:
            return memo[p]
        if state.get(p) is ON_STACK:
            return math.inf
        state[p] = ON_STACK
        best = 1.0
        for q in ancestors(p):
            value = chain(q)
            best = max(best, 1.0 + value)
            if best == math.inf:
                break
        state[p] = None
        memo[p] = best
        return best

    return chain(pid)


def is_shallow(config: Configuration, pid: Pid, threshold: int | None = None) -> bool:
    """Predicate SH:p.

    ``threshold`` is the constant the paper calls ``D``; None means the
    literal choice (the graph diameter) — see the module docstring.
    """
    if pid in config.faulty:
        return True
    bound = config.topology.diameter if threshold is None else threshold
    depth = config.local(pid, VAR_DEPTH)
    if depth > bound:
        return False
    l_p = longest_live_ancestor_chain(config, pid)
    for q in direct_descendants(config, pid):
        depth_q = config.local(q, VAR_DEPTH)
        if depth_q + l_p <= bound:
            continue
        if depth_q + 1 <= depth:
            continue
        return False
    return True


def shallow_set(config: Configuration, threshold: int | None = None) -> FrozenSet[Pid]:
    """All shallow processes."""
    return frozenset(
        p for p in config.topology.nodes if is_shallow(config, p, threshold)
    )


def stably_shallow_set(
    config: Configuration, threshold: int | None = None
) -> FrozenSet[Pid]:
    """All stably shallow processes.

    A process is stably shallow when it is shallow and either dead or all of
    its live (transitive) descendants are shallow.
    """
    shallow = shallow_set(config, threshold)
    faulty = config.faulty
    adjacency = _descendant_adjacency(config, live_only=False)

    # Transitive closure of descendants per process, memoized by DFS.  The
    # graph may contain cycles (we are outside the invariant), so use an
    # explicit visited set per query but share reachability via cache of
    # "reaches an unshallow live process".
    reaches_unshallow: Dict[Pid, bool] = {}

    def query(p: Pid) -> bool:
        """Does ``p`` reach (via descendants, through any process) a live
        non-shallow process?"""
        if p in reaches_unshallow:
            return reaches_unshallow[p]
        seen: Set[Pid] = set()
        stack = [p]
        found = False
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for child in adjacency[node]:
                if child not in faulty and child not in shallow:
                    found = True
                    stack.clear()
                    break
                if child not in seen:
                    stack.append(child)
        reaches_unshallow[p] = found
        return found

    result = []
    for p in config.topology.nodes:
        if p not in shallow:
            continue
        if p in faulty:
            result.append(p)
        elif not query(p):
            result.append(p)
    return frozenset(result)


def st_holds(config: Configuration, threshold: int | None = None) -> bool:
    """Predicate ST: all processes are stably shallow."""
    return len(stably_shallow_set(config, threshold)) == len(config.topology)


# --------------------------------------------------------------- eating


def eating_pairs(config: Configuration) -> FrozenSet[frozenset]:
    """Edges whose both endpoints are eating (dead or alive)."""
    result = []
    for e in config.topology.edges:
        p, q = tuple(e)
        if diner_state(config, p) is E and diner_state(config, q) is E:
            result.append(e)
    return frozenset(result)


def e_holds(config: Configuration) -> bool:
    """Predicate E: neighbours eat simultaneously only if both are dead."""
    faulty = config.faulty
    for e in eating_pairs(config):
        if not all(p in faulty for p in e):
            return False
    return True


# -------------------------------------------------------------- invariant


def invariant_holds(config: Configuration, threshold: int | None = None) -> bool:
    """The paper's invariant ``I = NC ∧ ST ∧ E`` (Theorem 1).

    ``threshold`` parameterises the depth bound used by ST; see the module
    docstring.  When checking a run of ``NADiners(diameter_override=t)``,
    pass the same ``t`` here.
    """
    return nc_holds(config) and e_holds(config) and st_holds(config, threshold)


def invariant_with_threshold(threshold: int) -> Callable[[Configuration], bool]:
    """A single-argument invariant predicate bound to ``threshold``
    (convenient for ``Engine.run(stop_when=...)``)."""

    def predicate(config: Configuration) -> bool:
        return invariant_holds(config, threshold)

    predicate.__name__ = f"invariant_holds_t{threshold}"
    return predicate


def invariant_report(
    config: Configuration, threshold: int | None = None
) -> Dict[str, bool]:
    """Each conjunct separately — convenient for diagnostics and tests."""
    return {
        "NC": nc_holds(config),
        "ST": st_holds(config, threshold),
        "E": e_holds(config),
    }


# ------------------------------------------------------------ red / green


def red_set(config: Configuration) -> FrozenSet[Pid]:
    """The least fixpoint of the paper's RD predicate.

    Red processes are those (transitively) blocked by dead processes; the
    dead themselves are red by definition.  Computed by iterating RD until
    no process changes colour — RD is monotone, so the iteration reaches the
    unique least fixpoint.
    """
    faulty = config.faulty
    red: Set[Pid] = set(faulty)
    changed = True
    while changed:
        changed = False
        for p in config.topology.nodes:
            if p in red:
                continue
            state_p = diner_state(config, p)
            if state_p is T:
                blocked = any(
                    q in red and diner_state(config, q) is not T
                    for q in direct_ancestors(config, p)
                )
            elif state_p is H:
                ancestors = direct_ancestors(config, p)
                descendants = direct_descendants(config, p)
                blocked = all(
                    q in red and diner_state(config, q) is T for q in ancestors
                ) and any(
                    q in red and diner_state(config, q) is E for q in descendants
                )
            else:
                blocked = False
            if blocked:
                red.add(p)
                changed = True
    return frozenset(red)


def green_set(config: Configuration) -> FrozenSet[Pid]:
    """All processes that are not red."""
    return frozenset(config.topology.nodes) - red_set(config)


def is_green(config: Configuration, pid: Pid) -> bool:
    """True when ``pid`` is green (unaffected by crashes, §3.2)."""
    return pid in green_set(config)
