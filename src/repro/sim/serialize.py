"""Configuration (de)serialization and diffing.

Model-checker counterexamples, locality reports, and bug reports all need
to move configurations between runs and machines.  ``to_json``/``from_json``
give a stable, human-readable round-trip; ``diff_configurations`` renders
what changed between two states (ideal for explaining a single transition
or a fault's blast radius).

Pids and values are encoded via ``repr`` and decoded with a restricted
literal parser, so arbitrary code never executes during loading.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from .configuration import Configuration
from .errors import SimulationError
from .topology import Topology, edge

FORMAT_VERSION = 1


def _encode(value: Any) -> str:
    text = repr(value)
    try:
        if ast.literal_eval(text) != value:
            raise ValueError
    except (ValueError, SyntaxError):
        raise SimulationError(
            f"value {value!r} is not literal-serialisable"
        ) from None
    return text


def _decode(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise SimulationError(f"malformed serialized value: {text!r}") from None


#: Public names for the literal codec: the observability layer (trace and
#: metrics JSONL) encodes pids, action names, and variable values with the
#: same repr/literal_eval round-trip counterexamples already use.
encode_literal = _encode
decode_literal = _decode


def to_json(config: Configuration, *, indent: int | None = 2) -> str:
    """Serialize a configuration (including its topology) to JSON."""
    topology = config.topology
    order = {p: i for i, p in enumerate(topology.nodes)}
    payload = {
        "format": FORMAT_VERSION,
        "nodes": [_encode(p) for p in topology.nodes],
        "edges": [
            sorted((_encode(a) for a in e), key=lambda s: order[_decode(s)])
            for e in sorted(
                topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))
            )
        ],
        "locals": {
            _encode(p): {
                name: _encode(value)
                for name, value in sorted(config.locals_of(p).items())
            }
            for p in topology.nodes
        },
        "edge_values": [
            _encode(config.edge_value(_decode(a), _decode(b)))
            for a, b in (
                sorted((_encode(x) for x in e), key=lambda s: order[_decode(s)])
                for e in sorted(
                    topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))
                )
            )
        ],
        "dead": sorted((_encode(p) for p in config.dead), key=str),
        "malicious": sorted((_encode(p) for p in config.malicious), key=str),
    }
    return json.dumps(payload, indent=indent)


def from_json(text: str) -> Configuration:
    """Rebuild a configuration serialized by :func:`to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"not valid JSON: {exc}") from None
    if payload.get("format") != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported serialization format: {payload.get('format')!r}"
        )
    nodes = [_decode(p) for p in payload["nodes"]]
    edges = [tuple(_decode(x) for x in pair) for pair in payload["edges"]]
    topology = Topology(nodes, edges)
    local_values = {
        _decode(p): {name: _decode(v) for name, v in values.items()}
        for p, values in payload["locals"].items()
    }
    edge_values = {
        edge(*pair): _decode(value)
        for pair, value in zip(
            ([tuple(_decode(x) for x in e) for e in payload["edges"]]),
            payload["edge_values"],
        )
    }
    return Configuration(
        topology,
        local_values,
        edge_values,
        dead=[_decode(p) for p in payload["dead"]],
        malicious=[_decode(p) for p in payload["malicious"]],
    )


@dataclass(frozen=True)
class ConfigurationDiff:
    """The pointwise differences between two same-topology configurations."""

    #: (pid, variable, before, after)
    locals_changed: Tuple[Tuple[Any, str, Any, Any], ...]
    #: (endpoint_a, endpoint_b, before, after)
    edges_changed: Tuple[Tuple[Any, Any, Any, Any], ...]
    #: pids whose crash status changed: (pid, before, after)
    status_changed: Tuple[Tuple[Any, str, str], ...]

    @property
    def empty(self) -> bool:
        return not (self.locals_changed or self.edges_changed or self.status_changed)

    def render(self) -> str:
        """A unified-diff-flavoured listing."""
        if self.empty:
            return "(no differences)"
        lines: List[str] = []
        for pid, name, before, after in self.locals_changed:
            lines.append(f"  {pid!r}.{name}: {before!r} -> {after!r}")
        for a, b, before, after in self.edges_changed:
            lines.append(f"  edge {a!r}--{b!r}: {before!r} -> {after!r}")
        for pid, before, after in self.status_changed:
            lines.append(f"  {pid!r}: {before} -> {after}")
        return "\n".join(lines)


def _status(config: Configuration, pid: Any) -> str:
    if pid in config.dead:
        return "dead"
    if pid in config.malicious:
        return "malicious"
    return "alive"


def diff_configurations(
    before: Configuration, after: Configuration
) -> ConfigurationDiff:
    """What changed from ``before`` to ``after`` (same topology required)."""
    topo = before.topology
    if topo.nodes != after.topology.nodes or topo.edges != after.topology.edges:
        raise SimulationError("cannot diff configurations of different topologies")
    locals_changed = []
    for pid in topo.nodes:
        old = before.locals_of(pid)
        new = after.locals_of(pid)
        for name in old:
            if old[name] != new.get(name):
                locals_changed.append((pid, name, old[name], new.get(name)))
    order = {p: i for i, p in enumerate(topo.nodes)}
    edges_changed = []
    for e in sorted(topo.edges, key=lambda e: tuple(sorted(order[x] for x in e))):
        a, b = sorted(e, key=lambda x: order[x])
        old_value = before.edge_value(a, b)
        new_value = after.edge_value(a, b)
        if old_value != new_value:
            edges_changed.append((a, b, old_value, new_value))
    status_changed = []
    for pid in topo.nodes:
        old_status = _status(before, pid)
        new_status = _status(after, pid)
        if old_status != new_status:
            status_changed.append((pid, old_status, new_status))
    return ConfigurationDiff(
        tuple(locals_changed), tuple(edges_changed), tuple(status_changed)
    )
