"""The simulation engine: drives one system through a computation.

Each engine step performs, in order:

1. **faults** — apply every fault event due at this step;
2. **malice** — every process in the arbitrary phase of a malicious crash
   takes one havoc step; a process whose budget runs out halts;
3. **hunger** — refresh the ``needs`` input variable of every live process
   from the hunger policy;
4. **action** — the daemon picks one enabled ``(process, action)`` pair and
   the engine executes it.

The interleaving this produces is a legal computation of the paper's model:
exactly one (algorithm or havoc) transition mutates protocol state per step
aside from the environment inputs, and the default daemon is weakly fair.

A run ends at quiescence (no enabled action and no pending fault — the
paper's *maximal* computation reaching a terminal state), when a caller's
``stop_when`` predicate first holds, or at the step budget.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from .configuration import Configuration
from .errors import SchedulingError
from .faults import BenignCrash, FaultPlan, MaliciousCrash
from .hunger import HungerPolicy
from .network import ProcessStatus, System
from .scheduler import Daemon, WeaklyFairDaemon
from .topology import Pid
from .trace import EventKind, TraceEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..obs.bus import EventBus

StopPredicate = Callable[[Configuration], bool]


@dataclass(frozen=True)
class RunResult:
    """Outcome of :meth:`Engine.run`.

    ``steps`` counts engine steps taken (including idle steps spent waiting
    for scheduled faults).  Exactly one of the three flags explains why the
    run ended.
    """

    steps: int
    quiescent: bool
    stopped: bool
    exhausted: bool
    final: Configuration

    def __post_init__(self) -> None:
        assert self.quiescent + self.stopped + self.exhausted == 1


class Engine:
    """Runs a :class:`~repro.sim.network.System` under a daemon, a hunger
    policy, and a fault plan.

    Parameters
    ----------
    system:
        The system to run (mutated in place).
    daemon:
        Scheduling strategy; defaults to a fresh :class:`WeaklyFairDaemon`.
    hunger:
        Drives the algorithm's hunger input variable, if it declares one.
        ``None`` leaves the variable entirely to its initial/corrupted value.
    faults:
        Scheduled fault events; ``None`` means a fault-free run.
    recorder:
        Optional trace recorder.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; every event the recorder
        would see is also published here, live, so probes can observe a run
        without any recorder at all.  ``None`` (the default) costs nothing.
    seed:
        Seed for the engine's private RNG; runs are deterministic given
        (system state, daemon state, seed).
    rng:
        An explicit ``random.Random`` instance to use instead of building
        one from ``seed``.  Callers that thread one RNG through state
        randomization *and* scheduling (campaign shards do) pass it here;
        the engine never touches the global ``random`` module either way.
    """

    def __init__(
        self,
        system: System,
        daemon: Daemon | None = None,
        *,
        hunger: HungerPolicy | None = None,
        faults: FaultPlan | None = None,
        recorder: TraceRecorder | None = None,
        bus: "EventBus | None" = None,
        seed: int = 0,
        rng: random.Random | None = None,
    ) -> None:
        self.system = system
        self.daemon = daemon if daemon is not None else WeaklyFairDaemon()
        self.hunger = hunger
        self.faults = faults
        self.recorder = recorder
        self.bus = bus
        self.rng = rng if rng is not None else random.Random(seed)
        self.step_count = 0
        #: Executed algorithm actions, keyed by ``(pid, action_name)``.
        self.action_counts: Counter = Counter()
        self._malicious_budget: Dict[Pid, int] = (
            faults.malicious_budget() if faults is not None else {}
        )
        self._hunger_var = system.algorithm.hunger_variable

    # ---------------------------------------------------------------- step

    def step(self) -> bool:
        """Advance the computation by one engine step.

        Returns False — without consuming a step — when nothing can ever
        happen again: no enabled action, no malicious process mid-phase, and
        no pending fault event.
        """
        step = self.step_count

        pending_faults = self.faults is not None and not self.faults.exhausted()
        self._apply_due_faults(step)
        self._malice_phase(step)
        self._refresh_hunger(step)

        enabled = self.system.all_enabled()
        if enabled:
            pid, action = self.daemon.select(self.system, enabled, step, self.rng)
            if (pid, action) not in enabled:
                raise SchedulingError(
                    f"daemon chose disabled action {action.name!r} at {pid!r}"
                )
            # Capture the acting process's locals *before* the command runs:
            # probes need the value ``depth`` held when ``exit`` fired, not
            # the reset value it holds afterwards.
            payload = self.system.locals_of(pid) if self.observed else None
            self.system.execute(pid, action)
            self.action_counts[(pid, action.name)] += 1
            self._emit(
                TraceEvent(step, EventKind.ACTION, pid, action.name, payload)
            )
        else:
            still_malicious = any(
                self.system.status(p) is ProcessStatus.MALICIOUS
                for p in self.system.pids
            )
            if not pending_faults and not still_malicious:
                return False
            self._emit(TraceEvent(step, EventKind.IDLE))

        self.step_count += 1
        if self.recorder is not None:
            self.recorder.maybe_snapshot(self.step_count, self.system.snapshot())
        return True

    # ----------------------------------------------------------------- run

    def run(
        self,
        max_steps: int,
        *,
        stop_when: StopPredicate | None = None,
        check_every: int = 1,
    ) -> RunResult:
        """Run until quiescence, ``stop_when``, or ``max_steps``.

        ``stop_when`` is evaluated on a fresh snapshot before the first step
        and then every ``check_every`` executed steps (snapshots cost O(n)).
        """
        if max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be positive")
        if self.recorder is not None:
            self.recorder.force_snapshot(self.step_count, self.system.snapshot())

        taken = 0
        if stop_when is not None and stop_when(self.system.snapshot()):
            return self._result(taken, stopped=True)
        while taken < max_steps:
            if not self.step():
                return self._result(taken, quiescent=True)
            taken += 1
            if stop_when is not None and taken % check_every == 0:
                if stop_when(self.system.snapshot()):
                    return self._result(taken, stopped=True)
        return self._result(taken, exhausted=True)

    def run_to_quiescence(self, max_steps: int) -> RunResult:
        """Run with no stop predicate; convenience wrapper over :meth:`run`."""
        return self.run(max_steps)

    def snapshot(self) -> "Configuration":
        """The system's current configuration.

        Delegation keeps the state-backend seam uniform: callers holding
        either this engine or a :class:`repro.fastcore.FastEngine` can
        observe state without knowing which backend they got.
        """
        return self.system.snapshot()

    def run_profiled(self, max_steps: int, **kwargs):
        """:meth:`run` under ``cProfile``; returns ``(result, profile)``.

        The canonical profiling hook point for this engine's hot loop —
        ``repro run --profile-out`` and ``repro bench --profile`` both land
        here, so hotspot reports always cover the same region: the full
        fault/malice/hunger/action step cycle, nothing outside it.
        """
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        try:
            result = self.run(max_steps, **kwargs)
        finally:
            profile.disable()
        return result, profile

    # ------------------------------------------------------------ internals

    def _result(
        self,
        steps: int,
        *,
        quiescent: bool = False,
        stopped: bool = False,
        exhausted: bool = False,
    ) -> RunResult:
        final = self.system.snapshot()
        if self.recorder is not None:
            self.recorder.force_snapshot(self.step_count, final)
        return RunResult(
            steps=steps,
            quiescent=quiescent,
            stopped=stopped,
            exhausted=exhausted,
            final=final,
        )

    def _apply_due_faults(self, step: int) -> None:
        if self.faults is None:
            return
        for event in self.faults.due(step):
            event.apply(self.system, self.rng)
            if isinstance(event, MaliciousCrash):
                if event.malicious_steps > 0:
                    self._emit(
                        TraceEvent(
                            step, EventKind.MALICE_BEGIN, event.pid, event.malicious_steps
                        )
                    )
                else:
                    self._emit(TraceEvent(step, EventKind.CRASH, event.pid, "malicious"))
            elif isinstance(event, BenignCrash):
                self._emit(TraceEvent(step, EventKind.CRASH, event.pid, "benign"))
            else:
                self._emit(
                    TraceEvent(step, EventKind.TRANSIENT, None, getattr(event, "pids", None))
                )

    def _malice_phase(self, step: int) -> None:
        for pid in self.system.pids:
            if self.system.status(pid) is not ProcessStatus.MALICIOUS:
                continue
            budget = self._malicious_budget.get(pid, 0)
            if budget > 0:
                self.system.havoc_process(pid, self.rng)
                self._emit(TraceEvent(step, EventKind.HAVOC, pid))
                self._malicious_budget[pid] = budget - 1
            if self._malicious_budget.get(pid, 0) <= 0:
                self.system.kill(pid)
                self._emit(TraceEvent(step, EventKind.CRASH, pid, "malice exhausted"))

    def _refresh_hunger(self, step: int) -> None:
        if self.hunger is None or self._hunger_var is None:
            return
        for pid in self.system.live_pids():
            self.system.write_local(
                pid, self._hunger_var, self.hunger.wants(pid, step, self.rng)
            )

    @property
    def observed(self) -> bool:
        """True when someone is listening (recorder attached or live bus
        subscriber); gates any per-event work beyond the event itself."""
        return self.recorder is not None or (
            self.bus is not None and self.bus.active
        )

    def _emit(self, event: TraceEvent) -> None:
        if self.bus is not None:
            self.bus.publish(event)
        if self.recorder is not None:
            self.recorder.record_event(event)

    def inject(self, event) -> None:
        """Apply a fault event immediately, outside any schedule.

        State-dependent fault scenarios ("crash the victim while it is
        eating") cannot be expressed as step-indexed plans; drive the engine
        to the state you want, then inject.
        """
        event.apply(self.system, self.rng)
        step = self.step_count
        if isinstance(event, MaliciousCrash):
            if event.malicious_steps > 0:
                self._malicious_budget[event.pid] = event.malicious_steps
                self._emit(
                    TraceEvent(step, EventKind.MALICE_BEGIN, event.pid, event.malicious_steps)
                )
            else:
                self._emit(TraceEvent(step, EventKind.CRASH, event.pid, "malicious"))
        elif isinstance(event, BenignCrash):
            self._emit(TraceEvent(step, EventKind.CRASH, event.pid, "benign"))
        else:
            self._emit(
                TraceEvent(step, EventKind.TRANSIENT, None, getattr(event, "pids", None))
            )

    # -------------------------------------------------------------- helpers

    def eats_of(self, pid: Pid, enter_action: Optional[str] = None) -> int:
        """How many times ``pid`` has executed its enter action.

        The action name defaults to what the algorithm itself declares
        (``Algorithm.enter_action``), so variants that rename their
        critical-section entry are counted correctly.
        """
        if enter_action is None:
            enter_action = self.system.algorithm.enter_action
        return self.action_counts[(pid, enter_action)]

    def total_eats(self, enter_action: Optional[str] = None) -> int:
        """Total enter-action executions across all processes."""
        if enter_action is None:
            enter_action = self.system.algorithm.enter_action
        return sum(
            count
            for (pid, name), count in self.action_counts.items()
            if name == enter_action
        )
