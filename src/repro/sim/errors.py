"""Exception hierarchy for the simulation kernel.

All kernel errors derive from :class:`SimulationError` so callers can catch
kernel problems with a single ``except`` clause while still being able to
distinguish configuration mistakes (bad topology, unknown variable) from
runtime scheduling problems.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class TopologyError(SimulationError):
    """The communication graph is malformed (disconnected, self-loop, ...)."""


class UnknownProcessError(SimulationError):
    """A process identifier does not belong to the system."""

    def __init__(self, pid: object) -> None:
        super().__init__(f"unknown process: {pid!r}")
        self.pid = pid


class UnknownVariableError(SimulationError):
    """A variable name is not declared by the algorithm."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown variable: {name!r}")
        self.name = name


class NotNeighborsError(SimulationError):
    """An edge operation referenced two processes that are not neighbours."""

    def __init__(self, pid: object, other: object) -> None:
        super().__init__(f"processes {pid!r} and {other!r} are not neighbours")
        self.pid = pid
        self.other = other


class DomainError(SimulationError):
    """A value written to a variable falls outside its declared domain."""

    def __init__(self, name: str, value: object) -> None:
        super().__init__(f"value {value!r} outside the domain of variable {name!r}")
        self.name = name
        self.value = value


class DeadProcessError(SimulationError):
    """An action of a dead (crashed) process was asked to execute."""

    def __init__(self, pid: object) -> None:
        super().__init__(f"process {pid!r} is dead and cannot take steps")
        self.pid = pid


class SchedulingError(SimulationError):
    """A daemon produced an invalid scheduling decision."""


class FaultPlanError(SimulationError):
    """A fault plan is internally inconsistent (duplicate crash, bad step, ...)."""
