"""Variable domains.

Every local variable declared by an :class:`~repro.sim.process.Algorithm` is
given a *domain*: the set of values the variable may legally take.  Domains
serve three distinct masters:

* the **simulator** validates writes against them (catching algorithm bugs
  early) and samples from them when injecting transient faults or driving the
  havoc phase of a malicious crash;
* the **model checker** enumerates them to build the full state space;
* **property-based tests** use them to generate arbitrary configurations.

Two families are provided.  :class:`FiniteDomain` and :class:`IntRange` are
fully enumerable.  :class:`SaturatingInt` models the paper's unbounded
``depth`` counter: it is enumerable only after choosing a saturation cap,
which is sound for the dining-philosophers program because every guard only
compares ``depth`` against the diameter ``D`` (see DESIGN.md §5).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Iterator, Sequence

from .errors import DomainError


class Domain(ABC):
    """An abstract set of values a variable may take."""

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return True when ``value`` is a member of the domain."""

    @abstractmethod
    def sample(self, rng: random.Random) -> Any:
        """Draw a uniformly random member (used for fault injection)."""

    @abstractmethod
    def values(self) -> Iterator[Any]:
        """Iterate every member.  Raises if the domain is not enumerable."""

    def validate(self, name: str, value: Any) -> Any:
        """Return ``value`` or raise :class:`DomainError` naming ``name``."""
        if not self.contains(value):
            raise DomainError(name, value)
        return value


class FiniteDomain(Domain):
    """An explicitly listed finite set of values.

    >>> d = FiniteDomain(("T", "H", "E"))
    >>> d.contains("H")
    True
    >>> sorted(d.values())
    ['E', 'H', 'T']
    """

    def __init__(self, members: Sequence[Any]) -> None:
        if not members:
            raise ValueError("a FiniteDomain needs at least one member")
        self._members: tuple[Any, ...] = tuple(members)
        self._member_set = frozenset(self._members)
        if len(self._member_set) != len(self._members):
            raise ValueError("FiniteDomain members must be distinct")

    def contains(self, value: Any) -> bool:
        return value in self._member_set

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self._members)

    def values(self) -> Iterator[Any]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return f"FiniteDomain({self._members!r})"


class IntRange(Domain):
    """The integer interval ``[lo, hi]``, inclusive at both ends."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty IntRange: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and self.lo <= value <= self.hi

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def values(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def __repr__(self) -> str:
        return f"IntRange({self.lo}, {self.hi})"


class SaturatingInt(Domain):
    """Non-negative integers, unbounded for writes but sampled/enumerated
    up to a cap.

    The paper's ``depth`` variable may grow without bound during a
    computation, so :meth:`contains` accepts every ``int >= 0``.  Fault
    injection and state-space enumeration, however, need a finite horizon:
    ``cap`` bounds both.  For the dining-philosophers program a cap of
    ``D + 1`` is a sound abstraction because all guards only test
    ``depth > D``.
    """

    def __init__(self, cap: int) -> None:
        if cap < 0:
            raise ValueError("SaturatingInt cap must be non-negative")
        self.cap = cap

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def sample(self, rng: random.Random) -> int:
        return rng.randint(0, self.cap)

    def values(self) -> Iterator[int]:
        return iter(range(self.cap + 1))

    def __len__(self) -> int:
        return self.cap + 1

    def __repr__(self) -> str:
        return f"SaturatingInt(cap={self.cap})"


class BoolDomain(FiniteDomain):
    """The two booleans; a convenience singleton-ish domain."""

    def __init__(self) -> None:
        super().__init__((False, True))

    def __repr__(self) -> str:
        return "BoolDomain()"
