"""Immutable global-state snapshots.

A :class:`Configuration` is one program state in the sense of §2 of the
paper: an assignment of values to every local variable of every process and
to every shared edge variable, plus the crash status of each process.

Configurations are hashable and comparable, which is what the explicit-state
model checker (:mod:`repro.verification`) needs, and they are the common
currency between the simulator, the invariant predicates
(:mod:`repro.core.predicates`) and the analysis suite.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Mapping, Tuple

from .errors import NotNeighborsError, UnknownProcessError, UnknownVariableError
from .topology import Edge, Pid, Topology, edge


class Configuration:
    """An immutable snapshot of the full system state.

    Parameters
    ----------
    topology:
        The communication graph (shared, never copied).
    local_values:
        ``{pid: {variable: value}}`` for every process.
    edge_values:
        ``{frozenset({p, q}): value}`` for every edge.
    dead:
        Processes that have crashed and halted.
    malicious:
        Processes currently in the arbitrary-behaviour phase of a malicious
        crash.  They are still taking (havoc) steps but are destined to halt;
        analysis code usually lumps them with ``dead`` via :attr:`faulty`.
    """

    __slots__ = ("_topology", "_locals", "_edges", "_dead", "_malicious", "_key", "_hash")

    def __init__(
        self,
        topology: Topology,
        local_values: Mapping[Pid, Mapping[str, Any]],
        edge_values: Mapping[Edge, Any],
        dead: Iterable[Pid] = (),
        malicious: Iterable[Pid] = (),
    ) -> None:
        self._topology = topology
        self._locals: Dict[Pid, Dict[str, Any]] = {
            pid: dict(values) for pid, values in local_values.items()
        }
        self._edges: Dict[Edge, Any] = dict(edge_values)
        self._dead: FrozenSet[Pid] = frozenset(dead)
        self._malicious: FrozenSet[Pid] = frozenset(malicious)
        for pid in topology.nodes:
            if pid not in self._locals:
                raise UnknownProcessError(pid)
        for e in topology.edges:
            if e not in self._edges:
                raise NotNeighborsError(*tuple(e))
        self._key: Tuple[Any, ...] | None = None
        self._hash: int | None = None

    # ----------------------------------------------------------- accessors

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def dead(self) -> FrozenSet[Pid]:
        """Processes that have halted."""
        return self._dead

    @property
    def malicious(self) -> FrozenSet[Pid]:
        """Processes in the arbitrary phase of a malicious crash."""
        return self._malicious

    @property
    def faulty(self) -> FrozenSet[Pid]:
        """Dead plus malicious processes."""
        return self._dead | self._malicious

    @property
    def live(self) -> Tuple[Pid, ...]:
        """Processes that are neither dead nor malicious, in node order."""
        return tuple(p for p in self._topology.nodes if p not in self.faulty)

    def is_dead(self, pid: Pid) -> bool:
        return pid in self._dead

    def local(self, pid: Pid, variable: str) -> Any:
        """The value of ``variable`` at process ``pid``."""
        try:
            values = self._locals[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None
        try:
            return values[variable]
        except KeyError:
            raise UnknownVariableError(variable) from None

    def locals_of(self, pid: Pid) -> Mapping[str, Any]:
        """A read-only view of all local variables of ``pid``."""
        try:
            return dict(self._locals[pid])
        except KeyError:
            raise UnknownProcessError(pid) from None

    def edge_value(self, p: Pid, q: Pid) -> Any:
        """The shared variable on the edge between ``p`` and ``q``."""
        e = edge(p, q)
        try:
            return self._edges[e]
        except KeyError:
            raise NotNeighborsError(p, q) from None

    def edge_values(self) -> Mapping[Edge, Any]:
        """A copy of all shared edge variables."""
        return dict(self._edges)

    # --------------------------------------------------------- derivations

    def replace(
        self,
        *,
        local_updates: Mapping[Pid, Mapping[str, Any]] | None = None,
        edge_updates: Mapping[Edge, Any] | None = None,
        dead: Iterable[Pid] | None = None,
        malicious: Iterable[Pid] | None = None,
    ) -> "Configuration":
        """A new configuration with the given pointwise updates applied."""
        new_locals = {pid: dict(values) for pid, values in self._locals.items()}
        if local_updates:
            for pid, updates in local_updates.items():
                if pid not in new_locals:
                    raise UnknownProcessError(pid)
                new_locals[pid].update(updates)
        new_edges = dict(self._edges)
        if edge_updates:
            for e, value in edge_updates.items():
                if e not in new_edges:
                    raise NotNeighborsError(*tuple(e))
                new_edges[e] = value
        return Configuration(
            self._topology,
            new_locals,
            new_edges,
            self._dead if dead is None else dead,
            self._malicious if malicious is None else malicious,
        )

    # ------------------------------------------------------- hash/equality

    def _canonical_key(self) -> Tuple[Any, ...]:
        if self._key is None:
            topo = self._topology
            order = {p: i for i, p in enumerate(topo.nodes)}
            local_part = tuple(
                tuple(sorted(self._locals[p].items())) for p in topo.nodes
            )
            edge_part = tuple(
                self._edges[e]
                for e in sorted(
                    topo.edges, key=lambda e: tuple(sorted(order[x] for x in e))
                )
            )
            self._key = (
                local_part,
                edge_part,
                tuple(sorted(order[p] for p in self._dead)),
                tuple(sorted(order[p] for p in self._malicious)),
            )
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        if self._topology is not other._topology and (
            self._topology.nodes != other._topology.nodes
            or self._topology.edges != other._topology.edges
        ):
            return False
        return self._canonical_key() == other._canonical_key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._canonical_key())
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Configuration(n={len(self._topology)}, dead={sorted(map(repr, self._dead))}, "
            f"malicious={sorted(map(repr, self._malicious))})"
        )

    def describe(self) -> str:
        """A multi-line human-readable rendering (used by examples/traces)."""
        lines = []
        for pid in self._topology.nodes:
            status = (
                "DEAD"
                if pid in self._dead
                else "MALICIOUS"
                if pid in self._malicious
                else "live"
            )
            values = ", ".join(f"{k}={v!r}" for k, v in sorted(self._locals[pid].items()))
            lines.append(f"  {pid!r} [{status}] {values}")
        order = {p: i for i, p in enumerate(self._topology.nodes)}
        for e in sorted(self._topology.edges, key=lambda e: tuple(sorted(order[x] for x in e))):
            p, q = sorted(e, key=lambda x: order[x])
            lines.append(f"  edge {p!r}--{q!r}: {self._edges[e]!r}")
        return "\n".join(lines)
