"""The mutable system: processes, their variables, and shared edge cells.

A :class:`System` instantiates an :class:`~repro.sim.process.Algorithm` on a
:class:`~repro.sim.topology.Topology`.  It owns all mutable state — local
variables, shared edge variables, and each process's crash status — and
mediates every read and write so that domain violations and model violations
(writing a neighbour's local, stepping a dead process) fail loudly.

The system knows nothing about time or scheduling; that is the engine's job.
It does know how to snapshot itself into an immutable
:class:`~repro.sim.configuration.Configuration` and how to rebuild itself
from one, which is how the simulator, the predicates, and the model checker
share a single implementation of the algorithm's transition semantics.
"""

from __future__ import annotations

import enum
import random
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from .configuration import Configuration
from .domains import Domain
from .errors import (
    DeadProcessError,
    NotNeighborsError,
    UnknownProcessError,
    UnknownVariableError,
)
from .process import ActionDef, Algorithm, ProcessView
from .topology import Edge, Pid, Topology


class ProcessStatus(enum.Enum):
    """Crash status of one process."""

    ALIVE = "alive"
    #: Arbitrary-behaviour phase of a malicious crash: the process still
    #: takes steps, but they are havoc writes, not algorithm actions.
    MALICIOUS = "malicious"
    #: Halted.  A dead process never takes another step; its variables stay
    #: frozen at whatever values they held when it died.
    DEAD = "dead"


class System:
    """Mutable state of one distributed system run.

    Parameters
    ----------
    topology:
        The communication graph.
    algorithm:
        The program every process runs.
    initially_dead:
        Processes dead from the very first state (the paper's "initially
        dead" special case of crash failure).
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: Algorithm,
        *,
        initially_dead: Iterable[Pid] = (),
    ) -> None:
        self._topology = topology
        self._algorithm = algorithm
        self._local_domains: Mapping[str, Domain] = dict(algorithm.local_domains(topology))
        self._edge_domains: Dict[Edge, Domain] = {
            e: algorithm.edge_domain(topology, e) for e in topology.edges
        }
        self._locals: Dict[Pid, Dict[str, Any]] = {}
        for pid in topology.nodes:
            values = dict(algorithm.initial_locals(pid, topology))
            self._validate_locals(pid, values)
            self._locals[pid] = values
        self._edges: Dict[Edge, Any] = {}
        for e in topology.edges:
            value = algorithm.initial_edge(e, topology)
            self._edge_domains[e].validate(f"edge {tuple(e)!r}", value)
            self._edges[e] = value
        self._status: Dict[Pid, ProcessStatus] = {
            pid: ProcessStatus.ALIVE for pid in topology.nodes
        }
        for pid in initially_dead:
            if pid not in self._status:
                raise UnknownProcessError(pid)
            self._status[pid] = ProcessStatus.DEAD
        self._views: Dict[Pid, ProcessView] = {
            pid: ProcessView(self, pid) for pid in topology.nodes
        }

    def _validate_locals(self, pid: Pid, values: Mapping[str, Any]) -> None:
        """Check initial locals cover exactly the declared variables."""
        declared = set(self._local_domains)
        provided = set(values)
        if provided != declared:
            missing = declared - provided
            extra = provided - declared
            raise UnknownVariableError(
                f"initial locals of {pid!r} mismatch declaration "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        for name, value in values.items():
            self._local_domains[name].validate(name, value)

    # ------------------------------------------------------------- basics

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def algorithm(self) -> Algorithm:
        return self._algorithm

    @property
    def pids(self) -> Tuple[Pid, ...]:
        """All process identifiers in deterministic (construction) order."""
        return self._topology.nodes

    def view(self, pid: Pid) -> ProcessView:
        """The action-execution view of ``pid``."""
        try:
            return self._views[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    # ------------------------------------------------------------- status

    def status(self, pid: Pid) -> ProcessStatus:
        try:
            return self._status[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def is_live(self, pid: Pid) -> bool:
        """True when ``pid`` runs algorithm actions (neither dead nor malicious)."""
        return self.status(pid) is ProcessStatus.ALIVE

    def live_pids(self) -> Tuple[Pid, ...]:
        return tuple(p for p in self.pids if self._status[p] is ProcessStatus.ALIVE)

    def mark_malicious(self, pid: Pid) -> None:
        """Enter the arbitrary-behaviour phase of a malicious crash."""
        if self.status(pid) is ProcessStatus.DEAD:
            raise DeadProcessError(pid)
        self._status[pid] = ProcessStatus.MALICIOUS

    def kill(self, pid: Pid) -> None:
        """Halt ``pid`` permanently (benign crash, or end of malice)."""
        self.status(pid)  # raises for unknown pid
        self._status[pid] = ProcessStatus.DEAD

    # ----------------------------------------------------------- variables

    def read_local(self, pid: Pid, variable: str) -> Any:
        try:
            values = self._locals[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None
        try:
            return values[variable]
        except KeyError:
            raise UnknownVariableError(variable) from None

    def write_local(self, pid: Pid, variable: str, value: Any) -> None:
        if variable not in self._local_domains:
            raise UnknownVariableError(variable)
        self._local_domains[variable].validate(variable, value)
        try:
            self._locals[pid][variable] = value
        except KeyError:
            raise UnknownProcessError(pid) from None

    def locals_of(self, pid: Pid) -> Dict[str, Any]:
        """A copy of ``pid``'s local variables (safe to keep after mutation)."""
        try:
            return dict(self._locals[pid])
        except KeyError:
            raise UnknownProcessError(pid) from None

    def read_edge(self, e: Edge) -> Any:
        try:
            return self._edges[e]
        except KeyError:
            raise NotNeighborsError(*tuple(e))

    def write_edge(self, e: Edge, value: Any) -> None:
        if e not in self._edges:
            raise NotNeighborsError(*tuple(e))
        self._edge_domains[e].validate(f"edge {tuple(e)!r}", value)
        self._edges[e] = value

    def local_domain(self, variable: str) -> Domain:
        try:
            return self._local_domains[variable]
        except KeyError:
            raise UnknownVariableError(variable) from None

    def local_variable_names(self) -> Tuple[str, ...]:
        return tuple(self._local_domains)

    def edge_domain_of(self, e: Edge) -> Domain:
        try:
            return self._edge_domains[e]
        except KeyError:
            raise NotNeighborsError(*tuple(e))

    # ------------------------------------------------------------- actions

    def enabled_actions(self, pid: Pid) -> List[ActionDef]:
        """The algorithm actions of ``pid`` whose guards hold right now.

        Dead and malicious processes have no enabled algorithm actions: a
        dead process takes no steps at all, and a malicious one only takes
        havoc steps (driven by the fault machinery, not by guards).
        """
        if self.status(pid) is not ProcessStatus.ALIVE:
            return []
        view = self._views[pid]
        return [a for a in self._algorithm.actions() if a.enabled(view)]

    def all_enabled(self) -> List[Tuple[Pid, ActionDef]]:
        """Every enabled ``(pid, action)`` pair, in deterministic order."""
        result: List[Tuple[Pid, ActionDef]] = []
        for pid in self.pids:
            for action in self.enabled_actions(pid):
                result.append((pid, action))
        return result

    def execute(self, pid: Pid, action: ActionDef) -> None:
        """Run ``action`` at ``pid`` (the caller has checked the guard)."""
        if self.status(pid) is not ProcessStatus.ALIVE:
            raise DeadProcessError(pid)
        action.execute(self._views[pid])

    def is_quiescent(self) -> bool:
        """True when no live process has an enabled action (terminal state)."""
        return not self.all_enabled()

    # ---------------------------------------------------- fault primitives

    def havoc_process(self, pid: Pid, rng: random.Random) -> None:
        """One arbitrary step of a malicious process.

        Writes random in-domain values to a random non-empty subset of
        ``pid``'s own local variables and incident edge variables.  This is
        the strongest perturbation the paper's model allows a faulty process:
        it can only touch state it could legally write when healthy.
        """
        if self.status(pid) is ProcessStatus.DEAD:
            raise DeadProcessError(pid)
        targets: List[Tuple[str, Any]] = [("local", name) for name in self._local_domains]
        targets.extend(
            ("edge", q) for q in self._topology.neighbors(pid)
        )
        count = rng.randint(1, len(targets))
        for kind, key in rng.sample(targets, count):
            if kind == "local":
                domain = self._local_domains[key]
                self._locals[pid][key] = domain.sample(rng)
            else:
                from .topology import edge as mk_edge

                e = mk_edge(pid, key)
                self._edges[e] = self._edge_domains[e].sample(rng)

    def randomize(self, rng: random.Random, pids: Iterable[Pid] | None = None) -> None:
        """Transient fault: replace state with arbitrary in-domain values.

        With ``pids=None`` the whole system state (all locals, all edges) is
        perturbed, matching the paper's "transient failure ... leaves the
        system in arbitrary state".  A subset limits the blast radius.
        """
        chosen = tuple(self.pids if pids is None else pids)
        chosen_set = set(chosen)
        for pid in chosen:
            if pid not in self._locals:
                raise UnknownProcessError(pid)
            for name, domain in self._local_domains.items():
                self._locals[pid][name] = domain.sample(rng)
        for e in self._topology.edges:
            if chosen_set & set(e):
                self._edges[e] = self._edge_domains[e].sample(rng)

    # ------------------------------------------------------- configuration

    def snapshot(self) -> Configuration:
        """Freeze the current state into an immutable configuration."""
        return Configuration(
            self._topology,
            self._locals,
            self._edges,
            dead=(p for p, s in self._status.items() if s is ProcessStatus.DEAD),
            malicious=(p for p, s in self._status.items() if s is ProcessStatus.MALICIOUS),
        )

    def restore(self, configuration: Configuration) -> None:
        """Overwrite the system state from ``configuration``.

        The configuration must concern the same topology.  Domain validation
        is applied, so a configuration fabricated with out-of-domain values
        is rejected rather than silently accepted.
        """
        if configuration.topology.nodes != self._topology.nodes or (
            configuration.topology.edges != self._topology.edges
        ):
            raise UnknownProcessError("configuration topology mismatch")
        for pid in self.pids:
            for name, value in configuration.locals_of(pid).items():
                self.write_local(pid, name, value)
        for e in self._topology.edges:
            self.write_edge(e, configuration.edge_value(*tuple(e)))
        for pid in self.pids:
            if pid in configuration.dead:
                self._status[pid] = ProcessStatus.DEAD
            elif pid in configuration.malicious:
                self._status[pid] = ProcessStatus.MALICIOUS
            else:
                self._status[pid] = ProcessStatus.ALIVE

    @classmethod
    def from_configuration(
        cls, algorithm: Algorithm, configuration: Configuration
    ) -> "System":
        """Materialise a mutable system from a snapshot."""
        system = cls(configuration.topology, algorithm)
        system.restore(configuration)
        return system

    def __repr__(self) -> str:
        dead = [p for p, s in self._status.items() if s is not ProcessStatus.ALIVE]
        return (
            f"System({self._algorithm.name}, n={len(self._topology)}, "
            f"faulty={sorted(map(repr, dead))})"
        )
