"""Daemons: who takes the next step.

The paper's computations are *maximal weakly-fair* interleavings (§2): at
each state one enabled action executes, and an action enabled in all but
finitely many states of an infinite computation executes infinitely often.

A :class:`Daemon` turns the set of currently enabled ``(pid, action)`` pairs
into a choice.  Three daemons are provided:

* :class:`WeaklyFairDaemon` — the default; random choice with an explicit
  *patience* bound that forces any action enabled for ``patience``
  consecutive opportunities to fire, making weak fairness a hard guarantee
  rather than a probability-1 property.
* :class:`RoundRobinDaemon` — deterministic cyclic scheduling (a common
  refinement; trivially weakly fair).
* :class:`AdversarialDaemon` — picks the worst enabled action according to a
  user-supplied score, with an optional patience escape hatch so that runs
  remain weakly fair.  Used by the failure-locality benchmarks to produce
  worst-case schedules.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence, Tuple

from .errors import SchedulingError
from .process import ActionDef
from .topology import Pid

if TYPE_CHECKING:  # pragma: no cover
    from .network import System

Choice = Tuple[Pid, ActionDef]


class Daemon(ABC):
    """Strategy object choosing the next action to execute."""

    @abstractmethod
    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        """Pick one of ``enabled`` (guaranteed non-empty)."""

    def reset(self) -> None:
        """Forget any internal scheduling state (start of a new run)."""


class _FairnessLedger:
    """Tracks, per (pid, action-name), how many consecutive selection
    opportunities the action has been enabled without firing.

    Weak fairness only protects *continuously* enabled actions, so the count
    of an action that becomes disabled is dropped.
    """

    def __init__(self) -> None:
        self._ages: Dict[Tuple[Pid, str], int] = {}

    def observe(self, enabled: Sequence[Choice]) -> None:
        keys = {(pid, action.name) for pid, action in enabled}
        for key in list(self._ages):
            if key not in keys:
                del self._ages[key]
        for key in keys:
            self._ages[key] = self._ages.get(key, 0) + 1

    def fired(self, choice: Choice) -> None:
        self._ages.pop((choice[0], choice[1].name), None)

    def oldest(self, enabled: Sequence[Choice]) -> Tuple[int, Choice]:
        best_age = -1
        best: Choice | None = None
        for choice in enabled:
            age = self._ages.get((choice[0], choice[1].name), 0)
            if age > best_age:
                best_age = age
                best = choice
        assert best is not None
        return best_age, best

    def reset(self) -> None:
        self._ages.clear()


class WeaklyFairDaemon(Daemon):
    """Random scheduling with a hard weak-fairness guarantee.

    Each selection, every enabled action's age is bumped.  If the oldest
    enabled action has waited at least ``patience`` opportunities it fires;
    otherwise a uniformly random enabled action does.  Any action enabled in
    all but finitely many states therefore executes infinitely often, as the
    model requires.
    """

    def __init__(self, patience: int = 64) -> None:
        if patience < 1:
            raise SchedulingError("patience must be at least 1")
        self.patience = patience
        self._ledger = _FairnessLedger()

    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        self._ledger.observe(enabled)
        age, oldest = self._ledger.oldest(enabled)
        choice = oldest if age >= self.patience else enabled[rng.randrange(len(enabled))]
        self._ledger.fired(choice)
        return choice

    def reset(self) -> None:
        self._ledger.reset()


class RoundRobinDaemon(Daemon):
    """Cycle over processes; the next process with an enabled action steps.

    Among several enabled actions of the chosen process, the first in the
    algorithm's declaration order fires, so runs are fully deterministic.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        pids = system.pids
        by_pid: Dict[Pid, List[Choice]] = {}
        for choice in enabled:
            by_pid.setdefault(choice[0], []).append(choice)
        n = len(pids)
        for offset in range(n):
            pid = pids[(self._cursor + offset) % n]
            if pid in by_pid:
                self._cursor = (self._cursor + offset + 1) % n
                return by_pid[pid][0]
        raise SchedulingError("no enabled action (select called on empty set?)")

    def reset(self) -> None:
        self._cursor = 0


class RoundDaemon(Daemon):
    """Executes in *asynchronous rounds* and counts them.

    A round is fixed when it starts: every ``(process, action)`` pair
    enabled at that moment is queued (in a seed-shuffled order) and executed
    one interleaved step at a time, skipping pairs whose guards have since
    become false.  When the queue drains, the next round begins.

    Rounds are the standard time unit of the stabilization literature ("the
    program converges in O(D) rounds"): within one round, every action that
    stays continuously enabled executes at least once.  The completed-round
    counter makes round-complexity measurements one attribute away:

    >>> daemon = RoundDaemon()
    >>> # ... run an Engine with it ...
    >>> daemon.rounds_completed      # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.rounds_completed = 0
        self._queue: List[Tuple[Pid, str]] = []

    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        by_key = {(pid, action.name): (pid, action) for pid, action in enabled}
        while self._queue:
            key = self._queue.pop()
            if key in by_key:
                return by_key[key]
        # queue drained: a round completed; plan the next one.
        self.rounds_completed += 1
        keys = list(by_key)
        rng.shuffle(keys)
        self._queue = keys
        return by_key[self._queue.pop()]

    def reset(self) -> None:
        self.rounds_completed = 0
        self._queue = []


ScoreFn = Callable[["System", Pid, ActionDef], float]


class AdversarialDaemon(Daemon):
    """Choose the enabled action with the highest adversary score.

    ``score(system, pid, action)`` expresses what the adversary prefers —
    e.g. "anything that is not the victim making progress".  Ties break by
    the deterministic enabled-order.  With ``patience`` set (default 256),
    an action enabled that many consecutive opportunities fires regardless,
    keeping the schedule weakly fair; ``patience=None`` removes the guarantee
    (useful to demonstrate what unfairness breaks).
    """

    def __init__(self, score: ScoreFn, *, patience: int | None = 256) -> None:
        if patience is not None and patience < 1:
            raise SchedulingError("patience must be at least 1 (or None)")
        self._score = score
        self.patience = patience
        self._ledger = _FairnessLedger()

    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        self._ledger.observe(enabled)
        if self.patience is not None:
            age, oldest = self._ledger.oldest(enabled)
            if age >= self.patience:
                self._ledger.fired(oldest)
                return oldest
        best = max(enabled, key=lambda c: self._score(system, c[0], c[1]))
        self._ledger.fired(best)
        return best

    def reset(self) -> None:
        self._ledger.reset()


class AdversaryStrategy(ABC):
    """A *state-reading* adversary policy, pluggable into :class:`StrategyDaemon`.

    Where :class:`AdversarialDaemon` scores each ``(pid, action)`` pair in
    isolation, a strategy sees the whole :class:`~repro.sim.network.System`
    every selection and may keep memory between selections — enough to
    chase moving targets such as "the head of the longest waiting chain".
    Implementations must derive every decision from the passed ``rng`` plus
    the observed state, so a run is replayable from its seed.
    """

    @abstractmethod
    def choose(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        """Pick one of ``enabled`` (guaranteed non-empty)."""

    def reset(self) -> None:
        """Forget accumulated targeting state (start of a new run)."""


class StrategyDaemon(Daemon):
    """The adaptive-adversary seam: a daemon driven by an
    :class:`AdversaryStrategy`, with the same patience escape hatch as
    :class:`AdversarialDaemon` so schedules stay weakly fair unless the
    experiment explicitly removes the guarantee (``patience=None``).
    """

    def __init__(
        self, strategy: AdversaryStrategy, *, patience: int | None = 256
    ) -> None:
        if patience is not None and patience < 1:
            raise SchedulingError("patience must be at least 1 (or None)")
        self.strategy = strategy
        self.patience = patience
        self._ledger = _FairnessLedger()

    def select(
        self,
        system: "System",
        enabled: Sequence[Choice],
        step: int,
        rng: random.Random,
    ) -> Choice:
        self._ledger.observe(enabled)
        if self.patience is not None:
            age, oldest = self._ledger.oldest(enabled)
            if age >= self.patience:
                self._ledger.fired(oldest)
                return oldest
        choice = self.strategy.choose(system, enabled, step, rng)
        if choice not in enabled:
            raise SchedulingError(
                f"strategy chose a non-enabled action {choice!r}"
            )
        self._ledger.fired(choice)
        return choice

    def reset(self) -> None:
        self._ledger.reset()
        self.strategy.reset()


def starve_target(target: Pid) -> ScoreFn:
    """An adversary score that delays ``target`` as long as possible.

    Steps of the target itself score lowest; steps of its neighbours low;
    everything else high — so the daemon serves the rest of the system first
    and the target only when fairness forces it.
    """

    def score(system: "System", pid: Pid, action: ActionDef) -> float:
        if pid == target:
            return 0.0
        if system.topology.are_neighbors(pid, target):
            return 1.0
        return 2.0

    return score
