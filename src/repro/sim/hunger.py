"""Hunger policies — the environment driving ``needs():p``.

In the paper, ``needs():p`` "signifies whether p wants to eat; the function
evaluates to true arbitrarily" (§2).  It is an *input* to the algorithm, not
something the algorithm computes.  We model it as a designated boolean local
variable (named by ``Algorithm.hunger_variable``) that the engine refreshes
every step from a :class:`HungerPolicy` — never written by algorithm actions.

Theorem 2's liveness guarantee is conditional on ``needs():p`` continuously
evaluating to true for the process in question, which is what
:class:`AlwaysHungry` provides; the other policies exercise the "arbitrarily"
part of the specification.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Mapping, Sequence, Tuple

from .topology import Pid


class HungerPolicy(ABC):
    """Decides, each step, whether each process currently wants to eat."""

    @abstractmethod
    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        """Should ``pid`` want to eat at ``step``?"""


class AlwaysHungry(HungerPolicy):
    """Every process continuously wants to eat (maximum contention)."""

    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        return True


class NeverHungry(HungerPolicy):
    """No process ever wants to eat (the system should go quiescent)."""

    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        return False


class ProbabilisticHunger(HungerPolicy):
    """Each step, each process wants to eat with a fixed probability.

    Models light-to-moderate contention.  With ``probability=1.0`` this is
    :class:`AlwaysHungry`; with ``0.0`` it is :class:`NeverHungry`.
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.probability = probability

    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        return rng.random() < self.probability


class SelectiveHunger(HungerPolicy):
    """Only the listed processes want to eat, and they do so continuously.

    Useful for liveness tests that watch one process: make exactly it hungry
    and assert it eventually eats.
    """

    def __init__(self, hungry_pids: Sequence[Pid]) -> None:
        self._hungry = frozenset(hungry_pids)

    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        return pid in self._hungry


class ScriptedHunger(HungerPolicy):
    """Follow an explicit per-process script of ``(from_step, value)`` pairs.

    Each process's schedule is a sequence of switch points sorted by step;
    the value of the last switch point at or before the current step applies.
    Processes without a schedule use ``default``.

    >>> policy = ScriptedHunger({0: [(0, True), (10, False)]}, default=False)
    >>> policy.wants(0, 5, random.Random(0))
    True
    >>> policy.wants(0, 10, random.Random(0))
    False
    """

    def __init__(
        self,
        schedules: Mapping[Pid, Sequence[Tuple[int, bool]]],
        *,
        default: bool = False,
    ) -> None:
        self._schedules = {
            pid: tuple(sorted(points)) for pid, points in schedules.items()
        }
        for pid, points in self._schedules.items():
            steps = [s for s, _ in points]
            if len(set(steps)) != len(steps):
                raise ValueError(f"duplicate switch step in schedule of {pid!r}")
        self._default = default

    def wants(self, pid: Pid, step: int, rng: random.Random) -> bool:
        points = self._schedules.get(pid)
        if not points:
            return self._default
        value = self._default
        for at_step, new_value in points:
            if at_step > step:
                break
            value = new_value
        return value
