"""Fault injection.

The paper's fault taxonomy (§1):

* **benign crash** — the process halts, undetectably, and never steps again
  (:class:`BenignCrash`; with ``at_step=0`` this is an *initially dead*
  process);
* **malicious crash** — the process "makes a finite number of arbitrary
  steps before halting" (:class:`MaliciousCrash`).  During the arbitrary
  phase the process may write anything into its own local variables and its
  incident shared edge variables — exactly the state a healthy process could
  write — after which it halts;
* **transient fault** — perturbs the state of (part of) the system,
  leaving it arbitrary, after which no further faults occur and
  stabilization must bring the system back (:class:`TransientFault`).

A :class:`FaultPlan` is a validated schedule of such events, applied by the
engine at the start of the step they are due.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .errors import FaultPlanError
from .network import System
from .topology import Pid


class FaultEvent(ABC):
    """One scheduled fault."""

    #: Engine step at whose start the fault takes effect.
    at_step: int

    @abstractmethod
    def apply(self, system: System, rng: random.Random) -> None:
        """Mutate ``system`` to reflect the fault occurring."""


@dataclass(frozen=True)
class BenignCrash(FaultEvent):
    """Process ``pid`` halts at ``at_step`` and never steps again."""

    pid: Pid
    at_step: int = 0

    def apply(self, system: System, rng: random.Random) -> None:
        system.kill(self.pid)


@dataclass(frozen=True)
class MaliciousCrash(FaultEvent):
    """Process ``pid`` behaves arbitrarily for ``malicious_steps`` engine
    steps starting at ``at_step``, then halts.

    Each step of the arbitrary phase the process performs one *havoc* write
    (random in-domain values into a random subset of its own locals and
    incident edges).  The engine drives the phase; this event only flips the
    process into the MALICIOUS status and registers the budget.
    """

    pid: Pid
    at_step: int = 0
    malicious_steps: int = 4

    def __post_init__(self) -> None:
        if self.malicious_steps < 0:
            raise FaultPlanError("malicious_steps must be non-negative")

    def apply(self, system: System, rng: random.Random) -> None:
        if self.malicious_steps == 0:
            system.kill(self.pid)
        else:
            system.mark_malicious(self.pid)


@dataclass(frozen=True)
class TransientFault(FaultEvent):
    """State corruption at ``at_step``.

    ``pids=None`` corrupts the entire system state (every local variable of
    every process and every edge variable); a tuple of pids limits the
    corruption to those processes and their incident edges.
    """

    at_step: int = 0
    pids: Tuple[Pid, ...] | None = None

    def apply(self, system: System, rng: random.Random) -> None:
        system.randomize(rng, self.pids)


class FaultPlan:
    """A validated, step-ordered schedule of fault events.

    Rules enforced at construction:

    * steps are non-negative;
    * a process crashes (benignly or maliciously) at most once;
    * malicious budgets are tracked so the engine can retire processes.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        crashed: set[Pid] = set()
        for event in events:
            if event.at_step < 0:
                raise FaultPlanError(f"fault scheduled at negative step: {event!r}")
            if isinstance(event, (BenignCrash, MaliciousCrash)):
                if event.pid in crashed:
                    raise FaultPlanError(f"process {event.pid!r} crashes twice")
                crashed.add(event.pid)
        self._events: List[FaultEvent] = sorted(events, key=lambda e: e.at_step)
        self._cursor = 0

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._events)

    @property
    def crash_sites(self) -> Tuple[Pid, ...]:
        """All processes scheduled to crash (benignly or maliciously)."""
        return tuple(
            e.pid for e in self._events if isinstance(e, (BenignCrash, MaliciousCrash))
        )

    def malicious_budget(self) -> Dict[Pid, int]:
        """Per-process arbitrary-step budgets for malicious crashes."""
        return {
            e.pid: e.malicious_steps
            for e in self._events
            if isinstance(e, MaliciousCrash) and e.malicious_steps > 0
        }

    def due(self, step: int) -> List[FaultEvent]:
        """Pop every event scheduled at or before ``step`` (in order)."""
        due: List[FaultEvent] = []
        while self._cursor < len(self._events) and self._events[self._cursor].at_step <= step:
            due.append(self._events[self._cursor])
            self._cursor += 1
        return due

    def exhausted(self) -> bool:
        """True when no future events remain."""
        return self._cursor >= len(self._events)

    def reset(self) -> None:
        """Rewind the plan (reuse across runs)."""
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self._events)} events)"
