"""Guarded-command shared-memory simulation kernel.

This package implements the computation model of §2 of the paper: processes
with local variables and guarded actions, shared per-edge variables, weakly
fair maximal interleavings, and the fault machinery (benign crashes,
malicious crashes, transient faults) the tolerance claims are stated over.

Typical usage::

    from repro.sim import System, Engine, WeaklyFairDaemon, ring
    from repro.core import NADiners

    system = System(ring(8), NADiners())
    engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=1)
    result = engine.run(10_000)
"""

from .configuration import Configuration
from .domains import BoolDomain, Domain, FiniteDomain, IntRange, SaturatingInt
from .engine import Engine, RunResult
from .errors import (
    DeadProcessError,
    DomainError,
    FaultPlanError,
    NotNeighborsError,
    SchedulingError,
    SimulationError,
    TopologyError,
    UnknownProcessError,
    UnknownVariableError,
)
from .faults import BenignCrash, FaultEvent, FaultPlan, MaliciousCrash, TransientFault
from .hunger import (
    AlwaysHungry,
    HungerPolicy,
    NeverHungry,
    ProbabilisticHunger,
    ScriptedHunger,
    SelectiveHunger,
)
from .network import ProcessStatus, System
from .process import ActionDef, Algorithm, ProcessView
from .scheduler import (
    AdversarialDaemon,
    AdversaryStrategy,
    Daemon,
    RoundDaemon,
    RoundRobinDaemon,
    StrategyDaemon,
    WeaklyFairDaemon,
    starve_target,
)
from .topology import (
    Edge,
    Pid,
    Topology,
    binary_tree,
    complete,
    edge,
    figure2,
    from_mapping,
    from_spec,
    grid,
    line,
    hypercube,
    random_connected,
    ring,
    star,
    torus,
)
from .serialize import ConfigurationDiff, diff_configurations, from_json, to_json
from .trace import EventKind, TraceEvent, TraceRecorder

__all__ = [
    # configuration
    "Configuration",
    # domains
    "BoolDomain",
    "Domain",
    "FiniteDomain",
    "IntRange",
    "SaturatingInt",
    # engine
    "Engine",
    "RunResult",
    # errors
    "DeadProcessError",
    "DomainError",
    "FaultPlanError",
    "NotNeighborsError",
    "SchedulingError",
    "SimulationError",
    "TopologyError",
    "UnknownProcessError",
    "UnknownVariableError",
    # faults
    "BenignCrash",
    "FaultEvent",
    "FaultPlan",
    "MaliciousCrash",
    "TransientFault",
    # hunger
    "AlwaysHungry",
    "HungerPolicy",
    "NeverHungry",
    "ProbabilisticHunger",
    "ScriptedHunger",
    "SelectiveHunger",
    # network
    "ProcessStatus",
    "System",
    # process
    "ActionDef",
    "Algorithm",
    "ProcessView",
    # scheduler
    "AdversarialDaemon",
    "AdversaryStrategy",
    "Daemon",
    "RoundDaemon",
    "RoundRobinDaemon",
    "StrategyDaemon",
    "WeaklyFairDaemon",
    "starve_target",
    # topology
    "Edge",
    "Pid",
    "Topology",
    "binary_tree",
    "complete",
    "edge",
    "figure2",
    "from_mapping",
    "from_spec",
    "grid",
    "line",
    "hypercube",
    "random_connected",
    "ring",
    "star",
    "torus",
    # serialize
    "ConfigurationDiff",
    "diff_configurations",
    "from_json",
    "to_json",
    # trace
    "EventKind",
    "TraceEvent",
    "TraceRecorder",
]
