"""Communication topologies.

The paper's model is "a set of processes joined by an arbitrary neighbour
relation" (§2).  :class:`Topology` is an immutable simple undirected graph
with precomputed all-pairs distances, because the algorithm needs the system
diameter ``D`` as a constant and the analysis suite constantly asks for the
distance between a crashed process and a starving one.

Generator functions at the bottom of the module build the standard families
used throughout the tests and benchmarks, plus the exact seven-process graph
of the paper's Figure 2.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Sequence, Tuple

from .errors import TopologyError, UnknownProcessError

Pid = Hashable
Edge = FrozenSet[Pid]


def edge(p: Pid, q: Pid) -> Edge:
    """The canonical (unordered) name of the edge between ``p`` and ``q``."""
    return frozenset((p, q))


class Topology:
    """An immutable connected simple graph over process identifiers.

    Parameters
    ----------
    nodes:
        The process identifiers.  Order is preserved and used as the
        deterministic iteration order everywhere in the kernel.
    edges:
        Unordered pairs of distinct nodes.  Duplicates are rejected so a
        typo'd edge list fails loudly.
    allow_disconnected:
        The paper assumes a single system with a finite diameter, so a
        disconnected graph is rejected by default.  Tests of degenerate
        situations may opt out.
    """

    def __init__(
        self,
        nodes: Sequence[Pid],
        edges: Iterable[Tuple[Pid, Pid]],
        *,
        allow_disconnected: bool = False,
    ) -> None:
        if len(nodes) == 0:
            raise TopologyError("a topology needs at least one process")
        self._nodes: Tuple[Pid, ...] = tuple(nodes)
        node_set = set(self._nodes)
        if len(node_set) != len(self._nodes):
            raise TopologyError("duplicate process identifiers")

        adjacency: Dict[Pid, list] = {p: [] for p in self._nodes}
        seen: set[Edge] = set()
        for p, q in edges:
            if p == q:
                raise TopologyError(f"self-loop on {p!r}")
            if p not in node_set:
                raise UnknownProcessError(p)
            if q not in node_set:
                raise UnknownProcessError(q)
            e = edge(p, q)
            if e in seen:
                raise TopologyError(f"duplicate edge {sorted(map(repr, e))}")
            seen.add(e)
            adjacency[p].append(q)
            adjacency[q].append(p)

        self._edges: FrozenSet[Edge] = frozenset(seen)
        self._adjacency: Dict[Pid, Tuple[Pid, ...]] = {
            p: tuple(neighbors) for p, neighbors in adjacency.items()
        }
        self._distances = self._all_pairs_distances()
        if not allow_disconnected and len(self._nodes) > 1:
            for p, q in itertools.combinations(self._nodes, 2):
                if (p, q) not in self._distances and (q, p) not in self._distances:
                    raise TopologyError(f"graph is disconnected: no path {p!r} .. {q!r}")
        finite = [d for d in self._distances.values()]
        self._diameter = max(finite) if finite else 0
        self._longest_path: int | None = None

    # ------------------------------------------------------------------ views

    @property
    def nodes(self) -> Tuple[Pid, ...]:
        """All process identifiers, in construction order."""
        return self._nodes

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The undirected edges, each a two-element frozenset."""
        return self._edges

    @property
    def diameter(self) -> int:
        """The maximum finite distance between two processes (paper's ``D``)."""
        return self._diameter

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, pid: Pid) -> bool:
        return pid in self._adjacency

    def neighbors(self, pid: Pid) -> Tuple[Pid, ...]:
        """The direct neighbours of ``pid`` (excluding ``pid`` itself)."""
        try:
            return self._adjacency[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def degree(self, pid: Pid) -> int:
        """Number of neighbours of ``pid``."""
        return len(self.neighbors(pid))

    def are_neighbors(self, p: Pid, q: Pid) -> bool:
        """True when an edge joins ``p`` and ``q``."""
        return edge(p, q) in self._edges

    def distance(self, p: Pid, q: Pid) -> int:
        """Hop distance between ``p`` and ``q``.

        Raises :class:`TopologyError` for disconnected pairs (only possible
        when the topology was built with ``allow_disconnected=True``).
        """
        if p not in self._adjacency:
            raise UnknownProcessError(p)
        if q not in self._adjacency:
            raise UnknownProcessError(q)
        if p == q:
            return 0
        key = (p, q) if (p, q) in self._distances else (q, p)
        try:
            return self._distances[key]
        except KeyError:
            raise TopologyError(f"{p!r} and {q!r} are disconnected") from None

    def ball(self, center: Pid, radius: int) -> FrozenSet[Pid]:
        """All processes within ``radius`` hops of ``center`` (inclusive)."""
        return frozenset(
            q
            for q in self._nodes
            if self._reachable(center, q) and self.distance(center, q) <= radius
        )

    def outside_ball(self, centers: Iterable[Pid], radius: int) -> FrozenSet[Pid]:
        """Processes whose distance to *every* center exceeds ``radius``.

        This is the paper's set ``P`` from Proposition 1: the processes far
        enough from all crashes that the diners properties must eventually
        hold for them.
        """
        centers = tuple(centers)
        result = []
        for q in self._nodes:
            if all(
                self._reachable(c, q) and self.distance(c, q) > radius for c in centers
            ):
                result.append(q)
            elif any(not self._reachable(c, q) for c in centers):
                # A disconnected process is unaffected by the crash: treat an
                # infinite distance as "outside the ball".
                if all(
                    (not self._reachable(c, q)) or self.distance(c, q) > radius
                    for c in centers
                ):
                    result.append(q)
        return frozenset(result)

    def _reachable(self, p: Pid, q: Pid) -> bool:
        if p == q:
            return True
        return (p, q) in self._distances or (q, p) in self._distances

    def longest_simple_path(self) -> int:
        """Length (in edges) of the longest simple path in the graph.

        This is the tight cycle-detection threshold for the diners program:
        ``depth`` propagates along priority edges, so in a legitimate acyclic
        priority graph it can reach this value (which equals the diameter on
        trees but exceeds it on rings, cliques, ...).  Exact DFS — exponential
        in general, intended for the small/medium graphs this repository
        simulates; the result is cached.
        """
        if self._longest_path is None:
            best = 0
            for source in self._nodes:
                stack: list = [(source, frozenset((source,)), 0)]
                while stack:
                    node, visited, length = stack.pop()
                    if length > best:
                        best = length
                    for nxt in self._adjacency[node]:
                        if nxt not in visited:
                            stack.append((nxt, visited | {nxt}, length + 1))
            self._longest_path = best
        return self._longest_path

    # ------------------------------------------------------------ internals

    def _all_pairs_distances(self) -> Dict[Tuple[Pid, Pid], int]:
        """BFS from every node; stores each unordered pair once."""
        dist: Dict[Tuple[Pid, Pid], int] = {}
        index = {p: i for i, p in enumerate(self._nodes)}
        for source in self._nodes:
            frontier = deque([(source, 0)])
            seen = {source}
            while frontier:
                node, d = frontier.popleft()
                if node != source and index[source] < index[node]:
                    dist[(source, node)] = d
                for nxt in self._adjacency[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append((nxt, d + 1))
        return dist

    def __repr__(self) -> str:
        return (
            f"Topology(n={len(self._nodes)}, m={len(self._edges)}, "
            f"diameter={self._diameter})"
        )


# --------------------------------------------------------------- generators


def ring(n: int) -> Topology:
    """A cycle of ``n >= 3`` processes ``0 .. n-1``."""
    if n < 3:
        raise TopologyError("a ring needs at least 3 processes")
    return Topology(range(n), [(i, (i + 1) % n) for i in range(n)])


def line(n: int) -> Topology:
    """A path of ``n >= 1`` processes ``0 .. n-1``."""
    if n < 1:
        raise TopologyError("a line needs at least 1 process")
    return Topology(range(n), [(i, i + 1) for i in range(n - 1)])


def star(n_leaves: int) -> Topology:
    """A hub (process 0) joined to ``n_leaves`` leaves ``1 .. n_leaves``."""
    if n_leaves < 1:
        raise TopologyError("a star needs at least 1 leaf")
    return Topology(range(n_leaves + 1), [(0, i) for i in range(1, n_leaves + 1)])


def complete(n: int) -> Topology:
    """The complete graph on ``n >= 2`` processes (classic round-table)."""
    if n < 2:
        raise TopologyError("a complete graph needs at least 2 processes")
    return Topology(range(n), itertools.combinations(range(n), 2))


def grid(width: int, height: int) -> Topology:
    """A ``width x height`` mesh; node ``(x, y)`` is encoded as ``y*width+x``."""
    if width < 1 or height < 1:
        raise TopologyError("grid dimensions must be positive")
    edges = []
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                edges.append((node, node + 1))
            if y + 1 < height:
                edges.append((node, node + width))
    return Topology(range(width * height), edges)


def binary_tree(depth: int) -> Topology:
    """A complete binary tree with ``2**(depth+1) - 1`` processes."""
    if depth < 0:
        raise TopologyError("tree depth must be non-negative")
    n = 2 ** (depth + 1) - 1
    edges = []
    for i in range(1, n):
        edges.append(((i - 1) // 2, i))
    return Topology(range(n), edges)


def random_connected(n: int, extra_edge_probability: float, seed: int) -> Topology:
    """A connected random graph: a random spanning tree plus random extras.

    Every non-tree pair is added independently with
    ``extra_edge_probability``, so 0.0 yields a random tree and 1.0 the
    complete graph.  Deterministic for a given ``seed``.
    """
    if n < 1:
        raise TopologyError("need at least 1 process")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise TopologyError("extra_edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    nodes = list(range(n))
    rng.shuffle(nodes)
    edges: set[Edge] = set()
    # Random spanning tree: attach each node to a random earlier node.
    for i in range(1, n):
        parent = nodes[rng.randrange(i)]
        edges.add(edge(nodes[i], parent))
    for p, q in itertools.combinations(range(n), 2):
        if edge(p, q) not in edges and rng.random() < extra_edge_probability:
            edges.add(edge(p, q))
    return Topology(range(n), [tuple(e) for e in edges])


def figure2() -> Topology:
    """The seven-process topology of the paper's Figure 2.

    Nodes are the letters ``a .. g``.  The figure requires:

    * ``a`` adjacent to ``b`` and ``c`` — ``a`` is the crashed eater and both
      neighbours are blocked;
    * ``d`` adjacent to ``b`` and ``c`` — ``d`` is the hungry process at
      distance 2 from the crash that yields to its descendant ``e``
      (the dynamic-threshold step);
    * a triangle ``e``-``f``-``g`` carrying the priority cycle that is broken
      when ``depth.g`` exceeds the diameter;
    * system diameter 3, because the narration reads "depth:g is 4 which is
      greater than the system's diameter: 3".

    The published drawing is not fully legible in the source text, so the
    edge set here additionally joins ``d`` to ``f`` and ``g`` — the minimal
    completion that satisfies all four constraints above (without it the
    distance from ``a`` to ``f`` and ``g`` would be 4, contradicting D = 3).
    """
    nodes = tuple("abcdefg")
    edges = [
        ("a", "b"),
        ("a", "c"),
        ("b", "d"),
        ("c", "d"),
        ("d", "e"),
        ("d", "f"),
        ("d", "g"),
        ("e", "f"),
        ("e", "g"),
        ("f", "g"),
    ]
    topo = Topology(nodes, edges)
    assert topo.diameter == 3, "Figure 2 topology must have diameter 3"
    return topo


def torus(width: int, height: int) -> Topology:
    """A ``width x height`` mesh with wraparound in both dimensions.

    Both dimensions must be at least 3 so no wraparound edge duplicates a
    mesh edge.  Node ``(x, y)`` is encoded as ``y * width + x``.
    """
    if width < 3 or height < 3:
        raise TopologyError("torus dimensions must be at least 3")
    edges = []
    for y in range(height):
        for x in range(width):
            node = y * width + x
            edges.append((node, y * width + (x + 1) % width))
            edges.append((node, ((y + 1) % height) * width + x))
    return Topology(range(width * height), edges)


def hypercube(dimension: int) -> Topology:
    """The ``dimension``-dimensional hypercube (2^d processes)."""
    if dimension < 1:
        raise TopologyError("hypercube dimension must be positive")
    n = 2**dimension
    edges = []
    for node in range(n):
        for bit in range(dimension):
            other = node ^ (1 << bit)
            if node < other:
                edges.append((node, other))
    return Topology(range(n), edges)


def from_mapping(adjacency: Mapping[Pid, Iterable[Pid]]) -> Topology:
    """Build a topology from an adjacency mapping (symmetrised)."""
    nodes = tuple(adjacency)
    edges: set[Edge] = set()
    for p, neighbors in adjacency.items():
        for q in neighbors:
            edges.add(edge(p, q))
    return Topology(nodes, [tuple(e) for e in edges])


def from_spec(spec: str) -> Topology:
    """Parse ``kind:arg[:arg]`` topology specs like ``ring:8`` or ``grid:4:3``.

    The spec grammar is the portable, JSON-friendly way to name a topology —
    campaign shards carry it across process boundaries and JSONL records
    instead of a pickled graph.  Raises :class:`TopologyError` on unknown
    kinds, non-integer arguments, or wrong arity.
    """
    kind, _, rest = spec.partition(":")
    try:
        args = [int(x) for x in rest.split(":") if x] if rest else []
    except ValueError:
        raise TopologyError(f"non-integer argument in topology spec {spec!r}") from None
    builders = {
        "ring": ring,
        "line": line,
        "star": star,
        "complete": complete,
        "grid": grid,
        "tree": binary_tree,
        "random": lambda n, seed=0: random_connected(n, 0.15, seed=seed),
    }
    if kind not in builders:
        raise TopologyError(
            f"unknown topology kind {kind!r}; one of {sorted(builders)}"
        )
    try:
        return builders[kind](*args)
    except TypeError as exc:
        raise TopologyError(f"bad arguments for {kind}: {exc}") from None
