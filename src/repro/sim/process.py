"""Algorithms, actions, and the view an action executes against.

The paper's programming model (§2) is guarded commands over shared memory: a
process owns local variables, may *read* its neighbours' local variables, and
shares with each neighbour one edge variable that either endpoint may write
(in a restricted manner).  This module captures that model:

* :class:`ActionDef` — a named ``guard``/``command`` pair.  Both receive a
  :class:`ProcessView`, the only handle through which an action may touch
  state.  The view enforces the model: reads of neighbour locals are allowed,
  writes are confined to own locals and incident edge variables, and crash
  status is *not* observable (crashes are undetectable in the paper's model).
* :class:`Algorithm` — a distributed program: variable declarations (with
  domains, so faults and the model checker know every variable's value
  space), initial values, and the action list every process runs.

Algorithms are written once and instantiated per system; all per-process
state lives in the :class:`~repro.sim.network.System`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Tuple

from .domains import Domain
from .errors import NotNeighborsError, SimulationError
from .topology import Edge, Pid, Topology, edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .network import System


class ProcessView:
    """The window through which one process's actions see the world.

    A view is bound to a process ``pid`` in a :class:`System`.  It exposes:

    * read/write access to ``pid``'s own local variables;
    * read-only access to neighbours' local variables (shared-memory reads);
    * read/write access to the shared variable of each incident edge.

    It deliberately does **not** expose whether a neighbour is alive: the
    malicious-crash model makes crashes undetectable, and keeping death out
    of the view keeps every algorithm honest about that.
    """

    __slots__ = ("_system", "_pid", "_neighbors")

    def __init__(self, system: "System", pid: Pid) -> None:
        self._system = system
        self._pid = pid
        self._neighbors = system.topology.neighbors(pid)

    @property
    def pid(self) -> Pid:
        """The process this view belongs to."""
        return self._pid

    @property
    def topology(self) -> Topology:
        """The communication graph (read-only global knowledge)."""
        return self._system.topology

    @property
    def diameter(self) -> int:
        """The system diameter — the paper's constant ``D``, known to all."""
        return self._system.topology.diameter

    @property
    def neighbors(self) -> Tuple[Pid, ...]:
        """The direct neighbours of this process."""
        return self._neighbors

    # ------------------------------------------------------------- locals

    def get(self, variable: str) -> Any:
        """Read one of this process's own local variables."""
        return self._system.read_local(self._pid, variable)

    def set(self, variable: str, value: Any) -> None:
        """Write one of this process's own local variables."""
        self._system.write_local(self._pid, variable, value)

    def peek(self, neighbor: Pid, variable: str) -> Any:
        """Read a local variable of a *neighbour* (shared-memory read).

        Reading an arbitrary remote process would break the model, so only
        neighbours (and the process itself) are allowed.
        """
        if neighbor != self._pid and neighbor not in self._neighbors:
            raise NotNeighborsError(self._pid, neighbor)
        return self._system.read_local(neighbor, variable)

    # -------------------------------------------------------------- edges

    def edge_value(self, neighbor: Pid) -> Any:
        """Read the shared variable on the edge to ``neighbor``."""
        if neighbor not in self._neighbors:
            raise NotNeighborsError(self._pid, neighbor)
        return self._system.read_edge(edge(self._pid, neighbor))

    def set_edge(self, neighbor: Pid, value: Any) -> None:
        """Write the shared variable on the edge to ``neighbor``."""
        if neighbor not in self._neighbors:
            raise NotNeighborsError(self._pid, neighbor)
        self._system.write_edge(edge(self._pid, neighbor), value)


GuardFn = Callable[[ProcessView], bool]
CommandFn = Callable[[ProcessView], None]


@dataclass(frozen=True)
class ActionDef:
    """One guarded command: ``name : guard -> command``.

    The same :class:`ActionDef` object is shared by every process running the
    algorithm; per-process binding happens by pairing it with a ``pid`` at
    scheduling time.
    """

    name: str
    guard: GuardFn
    command: CommandFn

    def enabled(self, view: ProcessView) -> bool:
        """Evaluate the guard against ``view``."""
        return bool(self.guard(view))

    def execute(self, view: ProcessView) -> None:
        """Run the command against ``view`` (caller checks the guard)."""
        self.command(view)

    def __repr__(self) -> str:
        return f"ActionDef({self.name!r})"


class Algorithm(ABC):
    """A distributed program in the guarded-command shared-memory model.

    Subclasses declare variables with domains, provide initial values, and
    list their actions.  ``hunger_variable`` names the boolean input variable
    driven externally by a :class:`~repro.sim.hunger.HungerPolicy` (the
    paper's ``needs():p``); algorithms without such an input return ``None``.
    """

    #: Human-readable algorithm name (used in traces and benchmark output).
    name: str = "algorithm"

    #: Name of the externally driven "wants to eat" boolean, or None.
    hunger_variable: str | None = None

    #: Name of the action whose execution means "this process eats" — what
    #: throughput and locality measurements count.  Variants that rename
    #: their critical-section entry override this instead of every
    #: measurement hard-coding ``"enter"``.
    enter_action: str = "enter"

    #: Name of the action that leaves the critical section; the depth probe
    #: watches its firings for ``depth > D`` (cycle-break) evidence.
    exit_action: str = "exit"

    @abstractmethod
    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        """Declare every local variable and its domain.

        The domains may depend on the topology (e.g. the ``depth`` counter
        saturates relative to the diameter).
        """

    @abstractmethod
    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        """The domain of the shared variable on edge ``e``."""

    @abstractmethod
    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        """Legitimate initial values for ``pid``'s local variables."""

    @abstractmethod
    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        """Legitimate initial value for the shared variable on edge ``e``."""

    @abstractmethod
    def actions(self) -> Tuple[ActionDef, ...]:
        """The guarded commands every process runs, in declaration order."""

    # ------------------------------------------------------------ helpers

    def action_named(self, name: str) -> ActionDef:
        """Look an action up by name (mostly for tests and ablations)."""
        for action in self.actions():
            if action.name == name:
                return action
        raise SimulationError(f"{self.name} has no action named {name!r}")

    def __repr__(self) -> str:
        return f"<Algorithm {self.name}>"
