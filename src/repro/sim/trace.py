"""Trace recording.

A :class:`TraceRecorder` captures what happened during a run: one
:class:`TraceEvent` per engine occurrence (action execution, havoc step,
crash, transient fault), plus optional periodic configuration snapshots.

Recording is opt-in because snapshots cost O(system size) each; benchmarks
that only need aggregate counters use the engine's built-in action counters
instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .configuration import Configuration
from .topology import Pid


class EventKind(enum.Enum):
    """What a trace event records."""

    ACTION = "action"  #: A live process executed an algorithm action.
    HAVOC = "havoc"  #: A malicious process took one arbitrary step.
    CRASH = "crash"  #: A process halted (benign crash or end of malice).
    MALICE_BEGIN = "malice-begin"  #: A malicious crash entered its arbitrary phase.
    TRANSIENT = "transient"  #: A transient fault corrupted state.
    IDLE = "idle"  #: No action enabled this step (system waiting on faults).


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence.

    ``detail`` is the action name for ACTION events and free-form context for
    the others (e.g. the corrupted pid set of a transient fault).  ``payload``
    optionally carries structured context — for ACTION events the engine puts
    the acting process's pre-action locals there, which is what lets a depth
    probe see the value ``depth`` held *when* ``exit`` fired.  It is excluded
    from equality so payload-free replicas still compare equal to originals.
    """

    step: int
    kind: EventKind
    pid: Optional[Pid] = None
    detail: Any = None
    payload: Any = field(default=None, compare=False)

    def __str__(self) -> str:
        pid = "" if self.pid is None else f" {self.pid!r}"
        detail = "" if self.detail is None else f" {self.detail}"
        return f"[{self.step:>6}] {self.kind.value}{pid}{detail}"


class TraceRecorder:
    """Accumulates events and (optionally) configuration snapshots.

    Parameters
    ----------
    snapshot_every:
        Record a full configuration snapshot every N executed steps;
        0 disables snapshots.  The initial and final configurations are
        always recorded when snapshots are enabled.
    keep_events:
        Event recording can be switched off independently when only
        snapshots are wanted.
    """

    def __init__(self, snapshot_every: int = 0, *, keep_events: bool = True) -> None:
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be non-negative")
        self.snapshot_every = snapshot_every
        self.keep_events = keep_events
        self._events: List[TraceEvent] = []
        self._snapshots: List[Tuple[int, Configuration]] = []

    # -------------------------------------------------------------- record

    def record_event(self, event: TraceEvent) -> None:
        if self.keep_events:
            self._events.append(event)

    def maybe_snapshot(self, step: int, configuration: Configuration) -> None:
        """Called by the engine after each step; applies the cadence."""
        if self.snapshot_every and step % self.snapshot_every == 0:
            self._snapshots.append((step, configuration))

    def force_snapshot(self, step: int, configuration: Configuration) -> None:
        """Record a snapshot regardless of cadence (run start/end)."""
        if self.snapshot_every:
            if not self._snapshots or self._snapshots[-1][0] != step:
                self._snapshots.append((step, configuration))

    # --------------------------------------------------------------- query

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    @property
    def snapshots(self) -> Tuple[Tuple[int, Configuration], ...]:
        return tuple(self._snapshots)

    def events_of_kind(self, kind: EventKind) -> Tuple[TraceEvent, ...]:
        return tuple(e for e in self._events if e.kind is kind)

    def actions_of(self, pid: Pid) -> Tuple[TraceEvent, ...]:
        """All algorithm actions executed by ``pid``, in order."""
        return tuple(
            e for e in self._events if e.kind is EventKind.ACTION and e.pid == pid
        )

    def first_action(self, pid: Pid, action_name: str) -> Optional[TraceEvent]:
        """The earliest execution of ``action_name`` by ``pid``, if any."""
        for e in self._events:
            if e.kind is EventKind.ACTION and e.pid == pid and e.detail == action_name:
                return e
        return None

    def clear(self) -> None:
        self._events.clear()
        self._snapshots.clear()

    def __len__(self) -> int:
        return len(self._events)

    def render(self, limit: int | None = None) -> str:
        """A human-readable listing of the first ``limit`` events."""
        chosen = self._events if limit is None else self._events[:limit]
        body = "\n".join(str(e) for e in chosen)
        if limit is not None and len(self._events) > limit:
            body += f"\n... ({len(self._events) - limit} more events)"
        return body
